// Package service implements the resident WATOS evaluation service behind
// cmd/watosd: a long-running daemon that accepts search jobs (model,
// workload, architecture restriction, scheduler options) over an HTTP/JSON
// API, runs them on a bounded job queue layered on the search/pool runtime,
// and exposes job status, results and cache statistics.
//
// Three properties make it a backend rather than a batch runner:
//
//   - Request canonicalization + in-flight dedup: requests normalize to the
//     same canonical form the CLI applies, and identical concurrent jobs
//     coalesce onto one execution (singleflight keyed by the request
//     fingerprint), observable via the stats endpoint.
//   - Shared warm caches: every job funnels through the process-wide
//     candidate memo (internal/sched) and evaluation cache
//     (internal/search), so a resident daemon amortizes strategy
//     construction and simulation across requests instead of cold-starting
//     per CLI run.
//   - Cache snapshot persistence: the daemon serializes both caches to disk
//     and restores them on restart, versioned by the fingerprint scheme so
//     stale keys are discarded rather than aliased (see snapshot.go).
//
// Results carry the canonical exploration record (sched.RenderCandidate),
// so a daemon-served job is provably byte-identical to the same search run
// in-process.
//
// The daemon is also the unit of the sharded tier (internal/shard): sweeps
// scatter into per-architecture jobs and gather byte-identically (sweep.go),
// snapshots stream over HTTP so a joining shard seeds from a warm peer, and
// the stats payload carries the queue occupancy gauges a routing front-end
// reads as its per-shard load signal.
package service

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/prefetch"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/search/pool"
)

// Request is one search job. The zero value of each field selects the same
// default the watos CLI applies, so a CLI run and a service job with equal
// effective parameters share one canonical form.
type Request struct {
	// Model is a model-zoo name (default Llama2-30B).
	Model string `json:"model,omitempty"`
	// Config restricts the architecture: config1..config4, mesh-switch;
	// empty explores the full Table II sweep.
	Config string `json:"config,omitempty"`
	// Batch is the global batch size (default 64).
	Batch int `json:"batch,omitempty"`
	// Micro is the micro-batch size (default 1).
	Micro int `json:"micro,omitempty"`
	// Seq is the sequence length (0 = model default capped at 4096).
	Seq int `json:"seq,omitempty"`
	// UseGA enables the genetic-algorithm global optimizer.
	UseGA bool `json:"ga,omitempty"`
	// MaxTP caps the tensor-parallel degree (0 = number of dies).
	MaxTP int `json:"max_tp,omitempty"`
	// FixedTP/FixedPP pin the parallelism (baseline reproduction).
	FixedTP int `json:"fixed_tp,omitempty"`
	FixedPP int `json:"fixed_pp,omitempty"`
	// PipelineWafers spreads the pipeline over a multi-wafer node.
	PipelineWafers int `json:"pipeline_wafers,omitempty"`
	// Seed drives the placement optimiser and GA.
	Seed int64 `json:"seed,omitempty"`

	// Priority selects the scheduling class: "interactive" (the default —
	// an unlabelled request is somebody waiting), "sweep-leg",
	// "background", or "prefetch" (speculative cache warming: admitted
	// only into idle capacity and cancelled the moment demand work
	// arrives). It is server-side scheduling metadata, deliberately
	// NOT part of the fingerprint: identical work submitted at different
	// priorities still coalesces onto one execution, and a higher-priority
	// duplicate promotes the queued job instead of waiting behind it.
	Priority string `json:"priority,omitempty"`
	// Criticality orders jobs within a class — higher dispatches first.
	// A sweep sets it per leg (SupraX-style critical-path-first: the legs
	// gating the most downstream merge work carry the highest value).
	// Like Priority it never enters the fingerprint.
	Criticality int `json:"criticality,omitempty"`
	// DeadlineMS is the caller's remaining time budget in milliseconds,
	// converted to an absolute deadline when the request is admitted (a
	// relative budget survives store-and-forward hops; each tier re-derives
	// the remainder before forwarding). 0 = no deadline. A job whose
	// deadline passes while it is still queued is cancelled without ever
	// executing and reported as deadline_exceeded; a job whose estimated
	// queue wait already exceeds the budget is refused at admission with
	// 429 + Retry-After. Like Priority, a deadline is scheduling metadata
	// and never part of the fingerprint.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Normalize applies the CLI-equivalent defaults and validates the model
// name, architecture restriction and workload. Two requests that normalize
// equal are guaranteed to produce byte-identical results, which is what
// makes the normalized fingerprint a safe dedup key.
func (r Request) Normalize() (Request, error) {
	if r.Model == "" {
		r.Model = "Llama2-30B"
	}
	spec, err := cliutil.Model(r.Model)
	if err != nil {
		return r, err
	}
	r.Model = spec.Name
	if _, err := cliutil.ArchCandidates(r.Config); err != nil {
		return r, err
	}
	if r.Batch == 0 {
		r.Batch = 64
	}
	if r.Micro == 0 {
		r.Micro = 1
	}
	r.Seq = cliutil.SeqLen(spec, r.Seq)
	work := model.Workload{GlobalBatch: r.Batch, MicroBatch: r.Micro, SeqLen: r.Seq}
	if err := work.Validate(); err != nil {
		return r, err
	}
	if _, ok := pool.ParseClass(r.Priority); !ok {
		return r, fmt.Errorf("unknown priority %q (want interactive, sweep-leg, background or prefetch)", r.Priority)
	}
	if r.DeadlineMS < 0 {
		return r, fmt.Errorf("negative deadline_ms %d", r.DeadlineMS)
	}
	return r, nil
}

// deadline converts the relative wire budget into an absolute deadline at
// admission time (zero when the request carries none).
func (r Request) deadline(now time.Time) time.Time {
	if r.DeadlineMS <= 0 {
		return time.Time{}
	}
	return now.Add(time.Duration(r.DeadlineMS) * time.Millisecond)
}

// class resolves the request's scheduling class (call after Normalize).
func (r Request) class() pool.Class {
	c, _ := pool.ParseClass(r.Priority)
	return c
}

// Workload returns the request's training workload (call after Normalize).
func (r Request) Workload() model.Workload {
	return model.Workload{GlobalBatch: r.Batch, MicroBatch: r.Micro, SeqLen: r.Seq}
}

// Fingerprint is the canonical identity of a normalized request — the
// singleflight dedup key. Worker counts and cache policy are server-side
// and never part of it (results are invariant to both, like the fingerprint
// scheme of the evaluation cache).
func (r Request) Fingerprint() string {
	return fmt.Sprintf("m=%s|c=%s|b=%d|mb=%d|s=%d|ga=%v|maxtp=%d|ftp=%d|fpp=%d|pw=%d|seed=%d",
		r.Model, r.Config, r.Batch, r.Micro, r.Seq, r.UseGA,
		r.MaxTP, r.FixedTP, r.FixedPP, r.PipelineWafers, r.Seed)
}

// State is a job lifecycle state.
type State string

// Job lifecycle: queued → running → done | failed | deadline_exceeded.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateExpired marks a job cancelled by its own deadline while still
	// queued (it never executed). It is deliberately distinct from
	// StateFailed: the work was fine, the caller's budget ran out — a
	// client should not treat it as a server fault, and a retry with a
	// larger budget may well succeed.
	StateExpired State = "deadline_exceeded"
	// StateCancelled marks a speculative prefetch job evicted from the
	// queue by demand arrival: it never executed, and nothing was lost —
	// the work was the daemon's own guess. Distinct from both StateFailed
	// (no fault) and StateExpired (no budget was exhausted); only
	// prefetch-class jobs ever reach it.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired || s == StateCancelled
}

// ArchSummary is one architecture candidate's outcome inside a Result.
type ArchSummary struct {
	Name       string  `json:"name"`
	Status     string  `json:"status"`
	Throughput float64 `json:"throughput,omitempty"`
	TP         int     `json:"tp,omitempty"`
	PP         int     `json:"pp,omitempty"`
}

// Result is a completed job's report.
type Result struct {
	BestArch            string        `json:"best_arch"`
	TP                  int           `json:"tp"`
	PP                  int           `json:"pp"`
	DP                  int           `json:"dp"`
	Collective          string        `json:"collective"`
	IterationTime       float64       `json:"iteration_time"`
	Throughput          float64       `json:"throughput"`
	TotalThroughput     float64       `json:"total_throughput"`
	RecomputeFraction   float64       `json:"recompute_fraction"`
	BubbleFraction      float64       `json:"bubble_fraction"`
	ComputeUtilization  float64       `json:"compute_utilization"`
	DRAMUtilization     float64       `json:"dram_utilization"`
	MeanLinkUtilization float64       `json:"mean_link_utilization"`
	MemPairs            int           `json:"mem_pairs"`
	OverflowBytes       float64       `json:"overflow_bytes"`
	Explored            int           `json:"explored"`
	Pruned              int           `json:"pruned"`
	PerArch             []ArchSummary `json:"per_arch"`
	// Canonical is the canonical rendering of the full exploration record
	// (see Canonical) — the byte-identity proof against an in-process run.
	Canonical string `json:"canonical"`
	// SchemeVersion and PredictorID stamp the result with the fingerprint
	// scheme and predictor identity it was computed under. They let a
	// completed-result cache (the router's) invalidate entries across
	// scheme bumps and predictor swaps instead of aliasing stale records,
	// exactly as snapshot headers do for the evaluation caches.
	SchemeVersion int    `json:"scheme_version,omitempty"`
	PredictorID   uint64 `json:"predictor_id,omitempty"`
}

// Job is the externally visible job record.
type Job struct {
	ID          string  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	State       State   `json:"state"`
	Request     Request `json:"request"`
	// Coalesced counts the extra submissions this execution absorbed
	// through in-flight dedup.
	Coalesced   int       `json:"coalesced"`
	SubmittedAt time.Time `json:"submitted_at"`
	// Deadline is the absolute point the job's budget expires (zero = no
	// deadline); it is the latest deadline across the coalesced submitters.
	Deadline   time.Time `json:"deadline,omitzero"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
	Result     *Result   `json:"result,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Summary is the listing form of a job (no result payload).
type Summary struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	State       State     `json:"state"`
	Model       string    `json:"model"`
	Config      string    `json:"config,omitempty"`
	Coalesced   int       `json:"coalesced"`
	SubmittedAt time.Time `json:"submitted_at"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCoalesced uint64 `json:"jobs_coalesced"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	// JobsExpired counts jobs cancelled by their own deadline while still
	// queued (deadline_exceeded) — distinct from JobsFailed.
	JobsExpired uint64 `json:"jobs_expired"`
	// JobsShed counts admissions refused by overload protection: the class
	// backlog budget was exhausted or the estimated queue wait already
	// exceeded the request's deadline (HTTP 429 + Retry-After).
	JobsShed uint64 `json:"jobs_shed"`
	// JobsEvicted counts terminal job records dropped by the History cap
	// or HistoryTTL; polling an evicted job ID returns 410 Gone.
	JobsEvicted uint64 `json:"jobs_evicted"`
	// SweepsRun counts completed POST /v1/sweeps scatters.
	SweepsRun uint64 `json:"sweeps_run"`
	// QueueDepth and JobsInFlight are the queue occupancy gauges: jobs
	// waiting in the backlog and jobs executing on workers. A routing
	// front-end reads them per shard as its load signal.
	QueueDepth   int `json:"queue_depth"`
	JobsInFlight int `json:"jobs_in_flight"`
	// Per-priority backlog depths (they sum to QueueDepth): the gauges
	// that make head-of-line blocking visible — a deep sweep-leg lane with
	// an empty interactive lane is the healthy shape.
	QueueInteractive int `json:"queue_interactive"`
	QueueSweepLeg    int `json:"queue_sweep_leg"`
	QueueBackground  int `json:"queue_background"`
	QueuePrefetch    int `json:"queue_prefetch"`
	// Warm-hit attribution: demand submissions whose fingerprint had
	// already been executed to completion on this daemon, split by who
	// warmed it — earlier demand work (HitsDemand) or the speculative
	// prefetch lane (HitsPrefetch). HitsPrefetch is the prefetcher's
	// payoff gauge.
	HitsDemand   uint64 `json:"hits_demand"`
	HitsPrefetch uint64 `json:"hits_prefetch"`
	// Prefetch-lane counters: jobs admitted into the speculative lane,
	// queued speculative jobs evicted by demand arrival, and distinct
	// prefetched fingerprints later served to at least one demand request
	// (useful <= issued; useful/issued is the predictor's precision).
	PrefetchIssued    uint64 `json:"prefetch_issued"`
	PrefetchCancelled uint64 `json:"prefetch_cancelled"`
	PrefetchUseful    uint64 `json:"prefetch_useful"`
	// TraceLen is the request-trace ring occupancy (see GET /v1/trace).
	TraceLen int `json:"trace_len"`
	// EstWaitMS estimates how long a new arrival of each class would queue
	// before dispatch (EWMA job duration × slots ahead) — the signal
	// admission control sheds on, exposed so operators and the routing
	// tier can see shedding coming before it starts.
	EstWaitInteractiveMS int64 `json:"est_wait_interactive_ms"`
	EstWaitBackgroundMS  int64 `json:"est_wait_background_ms"`
	// JobsPending and JobsRunning are job-store gauges over the retained
	// records (pending = queued), complementing the JobsDone/JobsFailed
	// counters above.
	JobsPending int `json:"jobs_pending"`
	JobsRunning int `json:"jobs_running"`
	// Async sweep-handle gauges: handles still running, terminal handles
	// retained for polling, and handles dropped by TTL/max-entries
	// eviction (polling an evicted handle returns 410).
	SweepsRunning  int    `json:"sweeps_running"`
	SweepsDone     int    `json:"sweeps_done"`
	SweepsFailed   int    `json:"sweeps_failed"`
	SweepsEvicted  uint64 `json:"sweeps_evicted"`
	SweepsRetained int    `json:"sweeps_retained"`
	// Draining reports a daemon that has stopped accepting new jobs and is
	// finishing its in-flight work before shutdown or removal from a fleet.
	Draining bool `json:"draining,omitempty"`
	// Backlog is the configured backlog capacity QueueDepth saturates at.
	Backlog        int               `json:"backlog"`
	JobWorkers     int               `json:"job_workers"`
	EvalWorkers    int               `json:"eval_workers"`
	SchemeVersion  int               `json:"scheme_version"`
	SnapshotPath   string            `json:"snapshot_path,omitempty"`
	UptimeSeconds  float64           `json:"uptime_seconds"`
	CandidateCache search.CacheStats `json:"candidate_cache"`
	EvalCache      search.CacheStats `json:"eval_cache"`
}

// DedupRate returns coalesced / submitted-including-coalesced, the service
// analogue of a cache hit rate.
func (s Stats) DedupRate() float64 {
	total := s.JobsSubmitted + s.JobsCoalesced
	if total == 0 {
		return 0
	}
	return float64(s.JobsCoalesced) / float64(total)
}

// Options configure a Server.
type Options struct {
	// EvalWorkers sizes each job's candidate-evaluation pool (sched
	// Options.Workers): 0 = all CPUs, 1 = sequential.
	EvalWorkers int
	// JobWorkers bounds the number of jobs running concurrently
	// (default 1: one search already saturates the evaluation pool).
	JobWorkers int
	// Backlog bounds the queued-job backlog (default 64); submissions
	// beyond it are rejected with ErrBusy.
	Backlog int
	// ClassBudgets caps the queued backlog per priority class (indexed by
	// pool.Class; 0 = uncapped). Budgets bite only while every job worker
	// is busy, so an idle daemon still takes any class. A submission over
	// its class budget is shed with a ShedError (HTTP 429 + Retry-After)
	// rather than ErrBusy: background work is given the smallest budget so
	// it sheds first, interactive the largest so it sheds last.
	ClassBudgets [pool.NumClasses]int
	// History bounds the retained terminal (done/failed) job records
	// (default 1024). A resident daemon would otherwise grow without
	// bound: every completed job pins its full canonical exploration
	// record (~130 KB per single-architecture search). The oldest
	// terminal jobs are evicted first; queued and running jobs are never
	// evicted.
	History int
	// HistoryGrace exempts freshly finished jobs from history eviction
	// (default 1 minute; negative = no grace) so a submitter polling for
	// its result cannot lose a completed job to a burst of later
	// completions. The History bound is therefore only enforced for
	// records older than the grace period.
	HistoryGrace time.Duration
	// HistoryTTL additionally expires terminal job records by age
	// (default 1 hour; negative = no TTL): a long-lived daemon with light
	// traffic should not pin hours-old exploration records just because
	// the History cap was never reached. Evicted job IDs answer 410.
	HistoryTTL time.Duration
	// SweepTTL and SweepHistory bound the async sweep-handle store:
	// terminal handles expire after SweepTTL (default 15 minutes) and the
	// store retains at most SweepHistory handles (default 256), oldest
	// finished first. Live handles are never evicted; polling an evicted
	// handle returns 410 Gone.
	SweepTTL     time.Duration
	SweepHistory int
	// SnapshotPath enables cache snapshot persistence when non-empty.
	SnapshotPath string
	// Prefetch enables the speculative cache-warming lane: after each
	// completed demand job the daemon predicts its sweep neighbors from
	// the request trace and pre-evaluates the top PrefetchFanout of them
	// at prefetch priority whenever the queue is idle. Off by default —
	// speculation costs CPU a single-tenant batch run may not want to
	// spend. The trace itself is always recorded (it is cheap and powers
	// GET /v1/trace even with the lane off).
	Prefetch bool
	// PrefetchFanout bounds the predictions issued per completed demand
	// job (default 3).
	PrefetchFanout int
	// TraceCapacity bounds the request-trace ring (default
	// prefetch.DefaultCapacity).
	TraceCapacity int
}

// ErrBusy reports a submission rejected because the job backlog is full.
var ErrBusy = errors.New("service: job backlog full")

// ErrDraining reports a submission rejected because the daemon is draining:
// it is finishing in-flight work ahead of shutdown or fleet removal and must
// not take on jobs whose results nobody would route a poll to.
var ErrDraining = errors.New("service: daemon is draining")

// ShedError reports a submission refused by overload protection — the class
// backlog budget is exhausted, or the estimated queue wait already exceeds
// the request's deadline so accepting it would only burn capacity on work
// destined to expire. It maps to HTTP 429 with RetryAfter as the Retry-After
// hint (when the backlog should have drained enough to try again).
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: %s (retry after %s)", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// retryAfterHint turns an estimated queue wait into a usable Retry-After:
// at least one second (the HTTP header has second granularity and a zero
// hint reads as "immediately", which would re-trigger the same rejection).
func retryAfterHint(wait time.Duration) time.Duration {
	if wait < time.Second {
		return time.Second
	}
	return wait.Round(time.Second)
}

// job is the internal record; all fields are guarded by Server.mu.
type job struct {
	Job
	done chan struct{}
	// ticket is the job's queue position while queued — the Promote
	// handle an interactive duplicate uses to drag a queued sweep leg up
	// to its own urgency. Inert once the job starts.
	ticket *pool.Ticket
	// expireTimer fires at the job's deadline to cancel it while queued;
	// stopped when the job starts running or a coalescing submitter
	// extends the deadline.
	expireTimer *time.Timer
}

// Server is the evaluation service.
type Server struct {
	opts   Options
	pred   predictor.Predictor
	queue  *pool.Queue
	start  time.Time
	sweeps *jobs.Store[SweepStatus]
	trace  *prefetch.Trace[TracePoint]

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string        // submission order, for listings
	inflight  map[string]*job // fingerprint → queued/running job
	seq       int
	stats     Stats
	draining  bool
	sweepDone map[string]chan struct{} // closed when a sweep handle goes terminal
	// warmed tracks fingerprints executed to completion on this daemon and
	// which lane warmed them — the warm-hit attribution table and the
	// prefetcher's already-warm filter. Bounded FIFO (warmOrder).
	warmed    map[string]*warmRecord
	warmOrder []string
}

// warmRecord attributes one completed fingerprint to the lane that executed
// it. usedByDemand flips on the first demand submission served warm from a
// prefetched entry, so PrefetchUseful counts distinct useful predictions
// while HitsPrefetch counts every warm serve.
type warmRecord struct {
	byPrefetch   bool
	usedByDemand bool
}

// warmedCap bounds the warm-fingerprint attribution table; far above any
// realistic working set (the eval caches behind it hold fewer entries), so
// FIFO eviction only guards against unbounded growth on a very long-lived
// daemon.
const warmedCap = 4096

// defaultPredictor is the shared predictor identity of every server built
// with a nil predictor. It must be one instance, not one per server: the
// caches are process-global and their keys embed the predictor's cache ID
// (search.PredictorID), so two default servers in one process — a test
// fleet, an embedded daemon pair — must agree on that identity for their
// cache entries and snapshots to be interchangeable, exactly as two default
// daemons in separate processes agree by each registering first.
var defaultPredictor = sync.OnceValue(func() predictor.Predictor {
	return predictor.NewLookupTable(predictor.TileLevel{})
})

// NewServer returns a started (but not yet serving) evaluation service
// sharing the process-wide caches. Callers own pred's identity: reusing one
// predictor across restarts (the default stack) is what keeps snapshot keys
// valid.
func NewServer(opts Options, pred predictor.Predictor) *Server {
	if pred == nil {
		pred = defaultPredictor()
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.Backlog <= 0 {
		opts.Backlog = 64
	}
	if opts.History <= 0 {
		opts.History = 1024
	}
	if opts.HistoryGrace == 0 {
		opts.HistoryGrace = time.Minute
	}
	if opts.HistoryTTL == 0 {
		opts.HistoryTTL = time.Hour
	}
	if opts.PrefetchFanout <= 0 {
		opts.PrefetchFanout = 3
	}
	s := &Server{
		opts:  opts,
		pred:  pred,
		queue: pool.NewQueue(opts.JobWorkers, opts.Backlog),
		start: time.Now(),
		sweeps: jobs.NewStore[SweepStatus](jobs.Options{
			Prefix:     "swp",
			TTL:        opts.SweepTTL,
			MaxEntries: opts.SweepHistory,
		}, cloneSweepStatus),
		trace:     prefetch.NewTrace[TracePoint](opts.TraceCapacity),
		jobs:      make(map[string]*job),
		inflight:  make(map[string]*job),
		sweepDone: make(map[string]chan struct{}),
		warmed:    make(map[string]*warmRecord),
	}
	s.queue.SetClassBudgets(opts.ClassBudgets)
	return s
}

// Predictor returns the server's predictor — the cache-identity anchor a
// snapshot is versioned by. A peer seeding from this server must hold an
// identical predictor stack for the seed to validate.
func (s *Server) Predictor() predictor.Predictor { return s.pred }

// Submit normalizes and enqueues a request. When an identical job is
// already queued or running, the submission coalesces onto it (singleflight)
// and the existing job is returned with coalesced=true.
func (s *Server) Submit(req Request) (Job, bool, error) {
	norm, err := req.Normalize()
	if err != nil {
		return Job{}, false, err
	}
	fp := norm.Fingerprint()

	now := time.Now()
	deadline := norm.deadline(now)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.stats.JobsRejected++
		return Job{}, false, ErrDraining
	}
	if norm.class() == pool.Prefetch {
		// Speculative submissions take the gated side entrance: admitted
		// only into idle capacity, evicted on demand arrival, and invisible
		// to the demand counters and trace.
		return s.submitPrefetchLocked(norm, fp, now)
	}
	// Record the demand request in the locality trace. Coalesced and fresh
	// submissions both count — each is a real arrival the predictor should
	// learn from — while speculative (prefetch-lane) traffic never does, or
	// the predictor would learn its own guesses.
	s.trace.Observe(fp, now, norm.TracePoint())
	if j, ok := s.inflight[fp]; ok {
		j.Coalesced++
		s.stats.JobsCoalesced++
		// Priority-inversion avoidance: an interactive duplicate of a
		// queued sweep leg must not inherit the leg's bulk priority — the
		// queued job is promoted to the duplicate's class in place, so the
		// waiting user is served at interactive urgency while the sweep
		// still gets the shared result.
		s.queue.Promote(j.ticket, norm.class(), norm.Criticality)
		// Deadline extension mirrors Promote (raise-only): a duplicate with
		// a later deadline — or none — must not lose the shared result to
		// the first submitter's tighter budget.
		s.extendDeadlineLocked(j, deadline)
		return j.Job, true, nil
	}
	// Warm-hit attribution: this fingerprint has already been executed to
	// completion here, so the job about to run will be served from the warm
	// caches — credit whichever lane warmed it.
	s.noteWarmHitLocked(fp)
	// Estimated-wait admission: refuse a deadlined request whose queue wait
	// alone would already blow its budget — accepting it wastes backlog
	// space on work destined to expire, and the caller learns *now* (429 +
	// Retry-After) instead of after the budget is gone.
	if !deadline.IsZero() {
		if wait := s.queue.EstimatedWait(norm.class(), norm.Criticality); now.Add(wait).After(deadline) {
			s.stats.JobsShed++
			return Job{}, false, &ShedError{
				Reason:     fmt.Sprintf("estimated queue wait %s exceeds deadline budget %dms", wait.Round(time.Millisecond), norm.DeadlineMS),
				RetryAfter: retryAfterHint(wait),
			}
		}
	}
	s.seq++
	j := &job{
		Job: Job{
			ID:          fmt.Sprintf("job-%d", s.seq),
			Fingerprint: fp,
			State:       StateQueued,
			Request:     norm,
			SubmittedAt: now,
			Deadline:    deadline,
		},
		done: make(chan struct{}),
	}
	// Reserve the queue slot before the job becomes visible: TrySubmitTask
	// is non-blocking, so holding the lock here is safe, and a rejection
	// leaves no half-registered state behind.
	j.ticket, err = s.queue.TrySubmitTask(pool.Task{
		Fn:       func() { s.run(j) },
		Class:    norm.class(),
		Crit:     norm.Criticality,
		Deadline: deadline,
		Expire:   func() { s.expire(j) },
	})
	if err != nil {
		if errors.Is(err, pool.ErrClassOverBudget) {
			s.stats.JobsShed++
			return Job{}, false, &ShedError{
				Reason:     fmt.Sprintf("%s backlog budget exhausted", norm.class()),
				RetryAfter: retryAfterHint(s.queue.EstimatedWait(norm.class(), norm.Criticality)),
			}
		}
		s.stats.JobsRejected++
		return Job{}, false, ErrBusy
	}
	if !deadline.IsZero() {
		// Cancel-while-queued: at the deadline, pull the job out of the
		// backlog (if a worker has not taken it, it never executes) and
		// report deadline_exceeded promptly — a waiting client must not
		// discover the expiry only when a worker finally reaches the slot.
		j.expireTimer = time.AfterFunc(time.Until(deadline), func() {
			if s.queue.Cancel(j.ticket) {
				s.expire(j)
			}
		})
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.inflight[fp] = j
	s.stats.JobsSubmitted++
	return j.Job, false, nil
}

// extendDeadlineLocked raises (or clears) a queued job's deadline to a later
// coalescing submitter's budget. Zero newDeadline means the duplicate has no
// deadline: the job's own is cleared, since at least one waiter is patient.
func (s *Server) extendDeadlineLocked(j *job, newDeadline time.Time) {
	if j.State != StateQueued || j.Deadline.IsZero() {
		return // running jobs finish regardless; no deadline to extend
	}
	if !newDeadline.IsZero() && !newDeadline.After(j.Deadline) {
		return
	}
	if j.expireTimer != nil {
		j.expireTimer.Stop()
		j.expireTimer = nil
	}
	j.Deadline = newDeadline
	s.queue.SetDeadline(j.ticket, newDeadline)
	if !newDeadline.IsZero() {
		j.expireTimer = time.AfterFunc(time.Until(newDeadline), func() {
			if s.queue.Cancel(j.ticket) {
				s.expire(j)
			}
		})
	}
}

// expire marks a still-queued job deadline_exceeded. It is reached from the
// deadline timer (after winning the queue.Cancel race) and from the queue
// worker finding the deadline past at dispatch; both mean the job never
// executed. A lost race (the job already running or expired) is a no-op.
func (s *Server) expire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.State != StateQueued {
		return
	}
	if j.expireTimer != nil {
		j.expireTimer.Stop()
		j.expireTimer = nil
	}
	j.State = StateExpired
	j.Error = fmt.Sprintf("deadline exceeded: %dms budget elapsed while queued", j.Request.DeadlineMS)
	j.FinishedAt = time.Now()
	s.stats.JobsExpired++
	delete(s.inflight, j.Fingerprint)
	close(j.done)
	s.evictHistoryLocked()
}

// run executes one job on a queue worker.
func (s *Server) run(j *job) {
	s.mu.Lock()
	if j.State != StateQueued { // expired in the dispatch race; never execute
		s.mu.Unlock()
		return
	}
	if j.expireTimer != nil {
		// Once running, the job finishes regardless of deadline: the work
		// is not abandonable mid-simulation, and its result warms the
		// shared caches either way. Deadline enforcement on in-flight work
		// is the caller's side (the router abandons expired legs).
		j.expireTimer.Stop()
		j.expireTimer = nil
	}
	j.State = StateRunning
	j.StartedAt = time.Now()
	req := j.Request
	s.mu.Unlock()

	res, err := s.execute(req)

	speculative := req.class() == pool.Prefetch
	s.mu.Lock()
	j.FinishedAt = time.Now()
	if err != nil {
		j.State = StateFailed
		j.Error = err.Error()
		// A failed speculation (e.g. an infeasible predicted neighbor) is
		// not a demand fault; it stays out of JobsFailed.
		if !speculative {
			s.stats.JobsFailed++
		}
	} else {
		j.State = StateDone
		j.Result = res
		if !speculative {
			s.stats.JobsDone++
		}
		s.markWarmedLocked(j.Fingerprint, speculative)
	}
	delete(s.inflight, j.Fingerprint)
	close(j.done)
	s.evictHistoryLocked()
	prefetchNext := err == nil && !speculative && s.opts.Prefetch && !s.draining
	s.mu.Unlock()
	if prefetchNext {
		// Prediction rides its own goroutine: it submits into the queue,
		// and this worker slot should go back to draining demand work.
		go s.predictAndPrefetch(req, j.Fingerprint)
	}
}

// evictHistoryLocked bounds the retained terminal job records two ways: the
// History cap drops the oldest beyond the bound, and HistoryTTL expires any
// terminal record by age regardless of the cap. Jobs still inside the grace
// window are spared from the cap (so in-flight result polls cannot 404 on a
// just-completed job), but not from the much longer TTL. Callers must hold
// s.mu.
func (s *Server) evictHistoryLocked() {
	now := time.Now()
	expired := func(j *job) bool {
		return s.opts.HistoryTTL > 0 && j.State.Terminal() && now.Sub(j.FinishedAt) >= s.opts.HistoryTTL
	}
	evictable := func(j *job) bool {
		return j.State.Terminal() && (s.opts.HistoryGrace < 0 || now.Sub(j.FinishedAt) >= s.opts.HistoryGrace)
	}
	excess := -s.opts.History
	for _, id := range s.order {
		if j := s.jobs[id]; evictable(j) && !expired(j) {
			excess++
		}
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if expired(j) || (excess > 0 && evictable(j)) {
			if !expired(j) {
				excess--
			}
			delete(s.jobs, id)
			s.stats.JobsEvicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// execute runs the co-exploration exactly as the watos CLI does in-process.
func (s *Server) execute(req Request) (*Result, error) {
	spec, err := cliutil.Model(req.Model)
	if err != nil {
		return nil, err
	}
	candidates, err := cliutil.ArchCandidates(req.Config)
	if err != nil {
		return nil, err
	}
	work := req.Workload()
	fw := core.New()
	fw.Predictor = s.pred
	fw.Options = sched.Options{
		UseGA:          req.UseGA,
		MaxTP:          req.MaxTP,
		FixedTP:        req.FixedTP,
		FixedPP:        req.FixedPP,
		PipelineWafers: req.PipelineWafers,
		Seed:           req.Seed,
		Workers:        s.opts.EvalWorkers,
	}
	res, err := fw.Explore(candidates, spec, work)
	if err != nil {
		return nil, err
	}
	out := BuildResult(res)
	// Stamp the versioning a completed-result cache invalidates by.
	out.SchemeVersion = search.FingerprintSchemeVersion
	out.PredictorID = search.PredictorID(s.pred)
	return out, nil
}

// BuildResult flattens a co-exploration into the wire Result. The CLI uses
// it on its local path too, so local and remote runs render one summary
// from one representation.
func BuildResult(res *core.ExploreResult) *Result {
	b := res.Best.Result.Best
	out := &Result{
		BestArch:            res.Best.Wafer.Name,
		TP:                  b.TP,
		PP:                  b.PP,
		DP:                  b.Report.DP,
		Collective:          b.Collective.String(),
		IterationTime:       b.Report.IterationTime,
		Throughput:          b.Report.Throughput,
		TotalThroughput:     b.Report.TotalThroughput,
		RecomputeFraction:   b.Report.RecomputeFraction,
		BubbleFraction:      b.Report.BubbleFraction,
		ComputeUtilization:  b.Report.ComputeUtilization,
		DRAMUtilization:     b.Report.DRAMUtilization,
		MeanLinkUtilization: b.Report.MeanLinkUtilization,
		Explored:            len(res.Best.Result.Explored),
		Pruned:              res.Best.Result.PrunedCount,
		Canonical:           Canonical(res),
	}
	if b.Strategy.Recompute != nil {
		out.MemPairs = len(b.Strategy.Recompute.Pairs)
		out.OverflowBytes = b.Strategy.Recompute.OverflowBytes
	}
	for _, ar := range res.PerArch {
		as := ArchSummary{Name: ar.Wafer.Name, Status: "ok"}
		switch {
		case ar.Err != nil:
			as.Status = ar.Err.Error()
		case ar.Result != nil && ar.Result.Best != nil:
			as.Throughput = ar.Result.Best.Report.Throughput
			as.TP = ar.Result.Best.TP
			as.PP = ar.Result.Best.PP
		}
		out.PerArch = append(out.PerArch, as)
	}
	return out
}

// Canonical renders a full co-exploration canonically: one header line per
// architecture candidate followed by the candidate's canonical exploration
// record (sched.RenderCandidate). For a single-architecture job this is
// exactly "arch=<name> err=<nil>\n" + sched.Result.Canonical(), which is
// how the service proves byte-identity with an in-process search.
func Canonical(res *core.ExploreResult) string {
	var b strings.Builder
	for _, ar := range res.PerArch {
		fmt.Fprintf(&b, "arch=%s err=%v\n", ar.Wafer.Name, ar.Err)
		if ar.Result != nil {
			b.WriteString(ar.Result.Canonical())
		}
	}
	return b.String()
}

// Job returns a snapshot of one job.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// JobGone reports whether a missing job ID was once issued and has been
// evicted from history — the 404-vs-410 distinction. Job IDs are issued
// from the monotonic sequence ("job-<n>"), so any parseable ordinal at or
// below the current sequence was real.
func (s *Server) JobGone(id string) bool {
	n, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return false
	}
	v, err := strconv.ParseUint(n, 10, 64)
	if err != nil || v < 1 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.jobs[id]; live {
		return false
	}
	return v <= uint64(s.seq)
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Summary, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		out = append(out, Summary{
			ID:          j.ID,
			Fingerprint: j.Fingerprint,
			State:       j.State,
			Model:       j.Request.Model,
			Config:      j.Request.Config,
			Coalesced:   j.Coalesced,
			SubmittedAt: j.SubmittedAt,
		})
	}
	return out
}

// Wait blocks until the job reaches a terminal state and returns it.
func (s *Server) Wait(id string) (Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("service: unknown job %q", id)
	}
	<-j.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.Job, nil
}

// BeginDrain flips the daemon into draining: new submissions are rejected
// with ErrDraining and the health endpoint turns unhealthy so a routing tier
// excludes the shard, while jobs already queued or running finish and their
// results stay pollable. Idempotent; there is no undrain — the next step is
// snapshot handoff and shutdown.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stats snapshots the service counters and the shared cache statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.draining
	for _, id := range s.order {
		switch s.jobs[id].State {
		case StateQueued:
			st.JobsPending++
		case StateRunning:
			st.JobsRunning++
		}
	}
	s.mu.Unlock()
	st.QueueDepth = s.queue.Depth()
	st.JobsInFlight = s.queue.InFlight()
	depths := s.queue.ClassDepths()
	st.QueueInteractive = depths[pool.Interactive]
	st.QueueSweepLeg = depths[pool.SweepLeg]
	st.QueueBackground = depths[pool.Background]
	st.QueuePrefetch = depths[pool.Prefetch]
	st.TraceLen = s.trace.Len()
	st.EstWaitInteractiveMS = s.queue.EstimatedWait(pool.Interactive, 0).Milliseconds()
	st.EstWaitBackgroundMS = s.queue.EstimatedWait(pool.Background, 0).Milliseconds()
	s.sweeps.Each(func(_ string, sw SweepStatus) {
		switch sw.State {
		case StateDone:
			st.SweepsDone++
		case StateFailed, StateExpired:
			st.SweepsFailed++
		default:
			st.SweepsRunning++
		}
	})
	st.SweepsRetained = st.SweepsRunning + st.SweepsDone + st.SweepsFailed
	st.SweepsEvicted = s.sweeps.Evicted()
	st.Backlog = s.opts.Backlog
	st.JobWorkers = s.opts.JobWorkers
	st.EvalWorkers = s.opts.EvalWorkers
	st.SchemeVersion = search.FingerprintSchemeVersion
	st.SnapshotPath = s.opts.SnapshotPath
	st.UptimeSeconds = time.Since(s.start).Seconds()
	st.CandidateCache = sched.CacheStats()
	st.EvalCache = search.DefaultCache().Stats()
	return st
}

// Close shuts the service down with bounded latency: jobs already running
// finish, the queued backlog is dropped (with the frontend down nobody can
// collect those results, and an unbounded drain would outlive any
// supervisor's kill timeout and lose the snapshot), still-queued jobs are
// marked failed, and a final cache snapshot is persisted when a snapshot
// path is configured.
func (s *Server) Close() error {
	s.queue.CloseDiscard()
	// CloseDiscard has joined the workers, so no run() is in flight: any
	// non-terminal job left is a dropped backlog entry.
	s.mu.Lock()
	now := time.Now()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		if j.expireTimer != nil {
			j.expireTimer.Stop()
			j.expireTimer = nil
		}
		j.State = StateFailed
		j.Error = "service: daemon shut down before the job ran"
		j.FinishedAt = now
		delete(s.inflight, j.Fingerprint)
		close(j.done)
		s.stats.JobsFailed++
	}
	s.mu.Unlock()
	if s.opts.SnapshotPath == "" {
		return nil
	}
	_, err := s.SaveSnapshot()
	return err
}

// CloseGraceful is the drain shutdown: submissions are refused from here on
// (BeginDrain), every job already accepted — queued or running — executes to
// completion, and only then does the usual close bookkeeping and final
// snapshot run. With the drain flag up the accepted set is finite, so this
// terminates; Close remains the bounded-latency path that drops the backlog.
func (s *Server) CloseGraceful() error {
	s.BeginDrain()
	s.queue.Close()
	return s.Close()
}

// AbortDrain cuts a CloseGraceful drain short from another goroutine (the
// second-signal path of a daemon shutdown): queued jobs not yet started are
// skipped — the close bookkeeping then marks them failed — while running
// jobs still finish.
func (s *Server) AbortDrain() { s.queue.Discard() }

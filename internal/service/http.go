package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// API surface (all JSON):
//
//	POST /v1/jobs       submit a Request; 202 + Job when queued, 200 + Job
//	                    when coalesced onto an identical in-flight job,
//	                    400 on a bad request, 503 when the backlog is full
//	GET  /v1/jobs       list job summaries in submission order
//	GET  /v1/jobs/{id}  one job, including its Result when done
//	GET  /v1/stats      Stats: job counters, dedup rate, cache statistics
//	POST /v1/snapshot   persist the cache snapshot now; 200 + SnapshotInfo
//	GET  /v1/healthz    liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// MaxRequestBytes bounds a job-submission body; a Request is a handful of
// short fields, so anything near the bound is garbage and a streaming
// client cannot pin handler memory.
const MaxRequestBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	// A typo'd field must fail loudly, not silently run the default job.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, coalesced, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrBusy):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case coalesced:
		writeJSON(w, http.StatusOK, j)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.SaveSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// API surface (all JSON):
//
//	POST /v1/jobs       submit a Request; 202 + Job when queued, 200 + Job
//	                    when coalesced onto an identical in-flight job,
//	                    400 on a bad request, 503 when the backlog is full
//	GET  /v1/jobs       list job summaries in submission order
//	GET  /v1/jobs/{id}  one job, including its Result when done; 410 once
//	                    the record has been evicted from history
//	POST /v1/sweeps     scatter a sweep Request into prioritized
//	                    per-architecture legs; async by default — 202 +
//	                    SweepStatus handle, poll GET /v1/sweeps/{id} for
//	                    incremental per-leg results. ?wait=1 blocks and
//	                    answers 200 + SweepResult (the pre-async contract).
//	GET  /v1/sweeps     list sweep-handle summaries
//	GET  /v1/sweeps/{id} one sweep handle, legs filling in as they
//	                    complete; 410 once the handle has been evicted
//	GET  /v1/stats      Stats: job counters, dedup rate, per-priority queue
//	                    occupancy gauges, sweep-handle gauges, cache
//	                    statistics
//	POST /v1/snapshot   persist the cache snapshot now; 200 + SnapshotInfo
//	GET  /v1/snapshot   stream the versioned cache snapshot (gob) — the pull
//	                    a cold shard seeds its caches from on join
//	PUT  /v1/snapshot   restore the caches from a streamed snapshot — the
//	                    push a draining shard hands its slice over with;
//	                    200 + SnapshotInfo, 409 when the snapshot is stale
//	POST /v1/drain      flip into draining (reject new jobs, health goes
//	                    503) ahead of snapshot handoff and removal
//	GET  /v1/healthz    liveness probe; 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshotPull)
	mux.HandleFunc("PUT /v1/snapshot", s.handleSnapshotPush)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// MaxRequestBytes bounds a job-submission body; a Request is a handful of
// short fields, so anything near the bound is garbage and a streaming
// client cannot pin handler memory.
const MaxRequestBytes = 1 << 20

// SetRetryAfter stamps the standard backoff hint (whole seconds, rounded
// up, minimum 1 — zero reads as "immediately").
func SetRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// WriteSubmitError renders a submission error with the overload-protection
// status split both daemons share: shedding is 429 + Retry-After (the class
// budget or the request's own deadline refused it — back off and retry),
// plain backpressure and draining are 503 (a full backlog also carries
// Retry-After since it clears as the queue drains; draining does not — this
// daemon is leaving and retries belong elsewhere), anything else is the
// caller's 400.
func WriteSubmitError(w http.ResponseWriter, err error) {
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		SetRetryAfter(w, shed.RetryAfter)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrBusy):
		SetRetryAfter(w, time.Second)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	// A typo'd field must fail loudly, not silently run the default job.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, coalesced, err := s.Submit(req)
	switch {
	case err != nil:
		WriteSubmitError(w, err)
	case coalesced:
		writeJSON(w, http.StatusOK, j)
	default:
		writeJSON(w, http.StatusAccepted, j)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		if s.JobGone(id) {
			writeJSON(w, http.StatusGone, errorBody{Error: "job " + id + " evicted from history"})
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	// Validation failures are the client's fault (400); failures past
	// validation are execution-side (503 for backpressure/draining, 500
	// otherwise). Pre-validate so the 400/503 split stays clean on the
	// async path too.
	if _, _, err := ExpandSweep(req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Synchronous compatibility flow: block until the merge.
		res, err := s.Sweep(req)
		var shed *ShedError
		switch {
		case errors.As(err, &shed), errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
			WriteSubmitError(w, err)
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusOK, res)
		}
		return
	}
	st, err := s.StartSweep(req)
	if err != nil {
		WriteSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	out := s.Sweeps()
	if out == nil {
		out = []SweepSummary{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.LookupSweep(id)
	if err != nil {
		writeJSON(w, SweepLookupStatus(err), errorBody{Error: "sweep " + id + ": " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Trace())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.SaveSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleSnapshotPull streams the live cache snapshot (header+body gob, the
// snapshot-file layout) so a joining shard can seed its caches from a warm
// peer. The receiver validates the versioned header and discards mismatched
// schemes, so serving the stream is always safe.
func (s *Server) handleSnapshotPull(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := s.WriteSnapshotTo(w); err != nil {
		// Headers are already out; the truncated gob stream fails the
		// receiver's decode, which is the correct failure signal mid-stream.
		return
	}
}

// handleSnapshotPush restores the caches from a snapshot streamed in the
// request body — the receiving half of a drain: the inheritors of a
// departing shard's fingerprints absorb its warm slice before the shard is
// removed, so their first post-drain hits are warm. A scheme or predictor
// mismatch is a 409: the pusher's keys cannot be trusted here.
func (s *Server) handleSnapshotPush(w http.ResponseWriter, r *http.Request) {
	info, err := s.RestoreSnapshotFrom(r.Body)
	switch {
	case errors.Is(err, ErrStaleSnapshot):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, info)
	}
}

// handleDrain flips the daemon into draining (idempotent): the routing tier
// calls it first in a DELETE /v1/shards flow so the victim stops taking work
// while its snapshot is handed to the inheritors.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.BeginDrain()
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealth is the routing tier's admission signal, so a draining daemon
// reports unhealthy: it still answers job polls and snapshot pulls, but must
// stop receiving new routed work immediately.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package service

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/search/pool"
)

// resetSharedCaches clears the process-global evaluation caches so a test
// measuring cold-vs-warm behavior starts cold regardless of suite order.
func resetSharedCaches() {
	search.DefaultCache().Reset()
	sched.ResetCache()
}

// occupyPrefetchLane parks the single job worker on a blocking task of the
// prefetch class, so speculative submissions queue behind it while the idle
// gate (which only counts demand work) stays open.
func occupyPrefetchLane(t *testing.T, s *Server) func() {
	t.Helper()
	release := make(chan struct{})
	blocked := make(chan struct{})
	_, err := s.queue.TrySubmitTask(pool.Task{
		Fn:    func() { close(blocked); <-release },
		Class: pool.Prefetch,
	})
	if err != nil {
		t.Fatalf("could not occupy the job worker: %v", err)
	}
	<-blocked
	var once sync.Once
	return func() { once.Do(func() { close(release) }) }
}

// settle waits for the daemon to go fully idle — queued and in-flight work
// of every class drained — so a test can assert on the post-speculation
// state deterministically.
func settle(t *testing.T, s *Server) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.QueueDepth == 0 && st.JobsInFlight == 0 {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("daemon did not go idle")
	return Stats{}
}

// TestSweepNeighborsEnumeration pins the neighbor generator: adjacent TP
// points first (halved before doubled), then PP steps, then sibling
// architecture rows; everything normalized, deduplicated, self excluded,
// and scheduling metadata cleared.
func TestSweepNeighborsEnumeration(t *testing.T) {
	req, err := (Request{
		Model: "Llama2-30B", Config: "config3", Batch: 64, Micro: 1, Seq: 2048,
		FixedTP: 4, Priority: "background", Criticality: 9, DeadlineMS: 50,
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ns := req.SweepNeighbors()
	if len(ns) < 3 {
		t.Fatalf("SweepNeighbors = %d entries, want TP neighbors plus config siblings", len(ns))
	}
	if ns[0].FixedTP != 2 || ns[1].FixedTP != 8 {
		t.Errorf("nearest neighbors = TP %d, %d; want halved (2) then doubled (8)", ns[0].FixedTP, ns[1].FixedTP)
	}
	self := req.Fingerprint()
	seen := map[string]bool{}
	for i, n := range ns {
		fp := n.Fingerprint()
		if fp == self {
			t.Errorf("neighbor %d is the request itself", i)
		}
		if seen[fp] {
			t.Errorf("neighbor %d duplicates fingerprint %s", i, fp)
		}
		seen[fp] = true
		if n.Priority != "" || n.Criticality != 0 || n.DeadlineMS != 0 {
			t.Errorf("neighbor %d kept scheduling metadata: %+v", i, n)
		}
	}
	// TP=1 has no halving neighbor: doubling comes first.
	one := req
	one.FixedTP = 1
	if ns := one.SweepNeighbors(); len(ns) == 0 || ns[0].FixedTP != 2 {
		t.Errorf("TP=1 first neighbor = %+v, want TP=2", ns)
	}
}

// TestPrefetchWarmsNeighborByteIdentical is the tentpole acceptance test:
// with the lane on, a completed demand job speculatively evaluates its
// nearest sweep neighbor; the next demand submission of that neighbor is a
// prefetch-attributed warm hit, and its canonical record is byte-identical
// to the same request demand-evaluated on a cold daemon.
func TestPrefetchWarmsNeighborByteIdentical(t *testing.T) {
	resetSharedCaches()
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 16, Prefetch: true, PrefetchFanout: 1}, nil)
	defer s.Close()

	step1 := Request{Model: "Llama2-30B", Config: "config3", Batch: 64, Micro: 1, Seq: 2048, FixedTP: 1}
	j, _, err := s.Submit(step1)
	if err != nil {
		t.Fatal(err)
	}
	if j, err = s.Wait(j.ID); err != nil || j.State != StateDone {
		t.Fatalf("demand step 1: %v (%s %s)", err, j.State, j.Error)
	}
	// Speculation launches on its own goroutine after the demand job
	// completes — wait for it to be issued before waiting for idle.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().PrefetchIssued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no speculation issued after a demand completion with the lane on")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := settle(t, s) // speculation (TP=2, the nearest neighbor) completes
	if st.HitsPrefetch != 0 || st.PrefetchUseful != 0 {
		t.Fatalf("prefetch credited before any demand use: %+v", st)
	}

	step2 := step1
	step2.FixedTP = 2
	j2, _, err := s.Submit(step2)
	if err != nil {
		t.Fatal(err)
	}
	if j2, err = s.Wait(j2.ID); err != nil || j2.State != StateDone {
		t.Fatalf("demand step 2: %v (%s %s)", err, j2.State, j2.Error)
	}
	st = s.Stats()
	if st.HitsPrefetch != 1 || st.PrefetchUseful != 1 {
		t.Errorf("warm-hit attribution = hits_prefetch %d, prefetch_useful %d; want 1, 1",
			st.HitsPrefetch, st.PrefetchUseful)
	}
	if st.HitsDemand != 0 {
		t.Errorf("hits_demand = %d on a prefetch-warmed fingerprint, want 0", st.HitsDemand)
	}

	// Byte identity: the same request on a cold daemon with no prefetch.
	resetSharedCaches()
	ref := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 16}, nil)
	defer ref.Close()
	rj, _, err := ref.Submit(step2)
	if err != nil {
		t.Fatal(err)
	}
	if rj, err = ref.Wait(rj.ID); err != nil || rj.State != StateDone {
		t.Fatalf("reference run: %v (%s %s)", err, rj.State, rj.Error)
	}
	if j2.Result.Canonical != rj.Result.Canonical {
		t.Errorf("prefetch-warmed canonical record differs from cold demand evaluation (%d vs %d bytes)",
			len(j2.Result.Canonical), len(rj.Result.Canonical))
	}
}

// TestPrefetchCancelledByDemand pins the preemption contract: a queued
// speculative job is evicted the instant demand work arrives, lands in
// StateCancelled (a terminal state pollers can observe), and is counted as
// cancelled — while the demand job proceeds untouched.
func TestPrefetchCancelledByDemand(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 8}, nil)
	defer s.Close()
	release := occupyPrefetchLane(t, s)
	defer release()

	spec := Request{Model: "Llama2-30B", Config: "config3", Batch: 64, Micro: 1, Seq: 2048,
		FixedTP: 2, Priority: "prefetch"}
	pj, coalesced, err := s.Submit(spec)
	if err != nil || coalesced {
		t.Fatalf("speculative submit: %v (coalesced %v)", err, coalesced)
	}
	if st := s.Stats(); st.PrefetchIssued != 1 || st.QueuePrefetch != 1 || st.JobsSubmitted != 0 {
		t.Fatalf("after speculative submit: %+v, want prefetch_issued 1, queue_prefetch 1, jobs_submitted 0", st)
	}

	dj, _, err := s.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(pj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("preempted speculation state = %s, want %s", got.State, StateCancelled)
	}
	if !got.State.Terminal() {
		t.Error("cancelled is not terminal")
	}
	if st := s.Stats(); st.PrefetchCancelled != 1 || st.QueuePrefetch != 0 {
		t.Errorf("after preemption: prefetch_cancelled %d, queue_prefetch %d; want 1, 0",
			st.PrefetchCancelled, st.QueuePrefetch)
	}

	release()
	if dj, err = s.Wait(dj.ID); err != nil || dj.State != StateDone {
		t.Fatalf("demand job after preemption: %v (%s %s)", err, dj.State, dj.Error)
	}
	if st := s.Stats(); st.JobsDone != 1 || st.JobsFailed != 0 {
		t.Errorf("demand counters = done %d, failed %d; want 1, 0 (speculation must stay invisible)",
			st.JobsDone, st.JobsFailed)
	}
}

// TestPrefetchRefusedWhenBusy pins the idle gate: while demand work is in
// flight, speculative submissions are refused outright (ErrBusy) and leave
// no job record behind.
func TestPrefetchRefusedWhenBusy(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 8}, nil)
	defer s.Close()
	release := occupyWorker(t, s) // demand-class blocker
	defer release()

	_, _, err := s.Submit(Request{Model: "Llama2-30B", Config: "config3", Batch: 64, Micro: 1, Seq: 2048,
		FixedTP: 2, Priority: "prefetch"})
	if err != ErrBusy {
		t.Fatalf("speculative submit under demand load: %v, want ErrBusy", err)
	}
	if st := s.Stats(); st.PrefetchIssued != 0 || st.JobsRejected != 0 {
		t.Errorf("refused speculation touched counters: %+v", st)
	}
}

// TestSweepLegPrefetchClamp pins the leg-priority floor: a sweep submitted
// at prefetch priority enqueues its legs at sweep-leg class — a
// prefetch-class leg would be cancelled by the first demand arrival and
// wedge the merge barrier — while explicit demand priorities still
// propagate (the PR 9 contract).
func TestSweepLegPrefetchClamp(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 64}, nil)
	defer s.Close()
	release := occupyWorker(t, s)
	defer release()

	if _, err := s.StartSweep(Request{Model: "Llama2-30B", Seq: 2048, Priority: "prefetch"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.QueuePrefetch != 0 || st.QueueSweepLeg == 0 {
		t.Errorf("prefetch-priority sweep queued as prefetch=%d sweep-leg=%d; want all legs sweep-leg",
			st.QueuePrefetch, st.QueueSweepLeg)
	}

	// Explicit demand priority still propagates to the legs unchanged.
	if _, err := s.StartSweep(Request{Model: "Llama2-30B", Seq: 2048, Seed: 2, Priority: "interactive"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.QueueInteractive == 0 {
		t.Errorf("interactive sweep queued no interactive legs: %+v", st)
	}
}

// TestTraceRecordsDemandOnly pins what the predictor learns from: demand
// submissions (fresh and coalesced) enter the trace in arrival order;
// speculative submissions never do.
func TestTraceRecordsDemandOnly(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 8}, nil)
	defer s.Close()
	release := occupyPrefetchLane(t, s)
	defer release()

	// Speculate first (the idle gate would refuse once demand queues up);
	// the demand arrival below preempts it, which is itself correct.
	a := testRequest()
	spec := a
	spec.Seed = 99
	spec.Priority = "prefetch"
	if _, _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	ja, _, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(a); err != nil { // coalesces; still a demand arrival
		t.Fatal(err)
	}
	tr := s.Trace()
	if tr.Len != 2 {
		t.Fatalf("trace has %d entries, want 2 (fresh + coalesced demand, no speculation)", tr.Len)
	}
	wantFP := ja.Fingerprint
	for i, e := range tr.Entries {
		if e.Fingerprint != wantFP {
			t.Errorf("trace[%d].Fingerprint = %s, want %s", i, e.Fingerprint, wantFP)
		}
		if e.Req.Model != "Llama2-30B" {
			t.Errorf("trace[%d] decoded coordinates = %+v", i, e.Req)
		}
	}
	if st := s.Stats(); st.TraceLen != 2 {
		t.Errorf("Stats.TraceLen = %d, want 2", st.TraceLen)
	}
}

// TestTraceEndpointAndSnapshotRoundTrip drives the trace over the HTTP
// surface and through the snapshot file: GET /v1/trace serves the ring, a
// snapshot save persists it alongside the caches, and a restarted server
// restores it entry for entry.
func TestTraceEndpointAndSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snapshot")
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 8, SnapshotPath: path}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for seed := int64(1); seed <= 3; seed++ {
		req := testRequest()
		req.Seed = seed
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if j, err = s.Wait(j.ID); err != nil || j.State != StateDone {
			t.Fatalf("seed %d: %v (%s)", seed, err, j.State)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var over TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&over); err != nil {
		t.Fatal(err)
	}
	if over.Len != 3 || len(over.Entries) != 3 {
		t.Fatalf("GET /v1/trace = %d entries, want 3", over.Len)
	}

	info, err := s.SaveSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.TraceEntries != 3 {
		t.Errorf("snapshot recorded %d trace entries, want 3", info.TraceEntries)
	}
	s.Close()

	s2 := NewServer(Options{EvalWorkers: 1, SnapshotPath: path}, nil)
	defer s2.Close()
	info, err = s2.LoadSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.TraceEntries != 3 {
		t.Errorf("restore reported %d trace entries, want 3", info.TraceEntries)
	}
	restored := s2.Trace()
	if len(restored.Entries) != 3 {
		t.Fatalf("restored trace has %d entries, want 3", len(restored.Entries))
	}
	for i, e := range restored.Entries {
		if e.Fingerprint != over.Entries[i].Fingerprint || !e.At.Equal(over.Entries[i].At) {
			t.Errorf("restored[%d] = %+v, want %+v", i, e, over.Entries[i])
		}
	}
}

package service

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cliutil"
	"repro/internal/jobs"
	"repro/internal/search/pool"
)

// Async sweeps: a sweep is a first-class job with a durable handle. POST
// /v1/sweeps returns 202 plus a handle ID immediately; the handle collects
// per-architecture results incrementally as legs complete, so a client can
// consume partial Table II rows while the tail is still running, and the
// merged record — assembled in sweep order from exactly the per-leg Results
// the synchronous path would have gathered — is byte-identical to a
// synchronous single-node sweep.
//
// Dispatch is SupraX-style critical-path-first: the merge barrier waits on
// the slowest leg, so the legs gating the most downstream work (estimated
// by the architecture's die count, which bounds the strategy space the leg
// explores) are submitted first at the highest within-class criticality,
// and light legs fill the remaining worker slots. All legs ride the
// "sweep-leg" priority class, strictly below interactive traffic.

// SweepLeg is the live status of one scattered sweep part inside a handle.
type SweepLeg struct {
	Config      string `json:"config"`
	JobID       string `json:"job_id,omitempty"`
	Fingerprint string `json:"fingerprint"`
	// Criticality is the leg's dispatch weight (die count of its arch).
	Criticality int   `json:"criticality"`
	State       State `json:"state"`
	// Shard names the backend the leg ran on (router-filled).
	Shard     string `json:"shard,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	// Result is the leg's completed record — the partial Table II row a
	// poller can consume before the sweep finishes.
	Result *Result `json:"result,omitempty"`
	// Degraded marks a leg the router could not complete (every replica
	// exhausted or the leg's deadline expired in flight) that was absorbed
	// instead of failing the sweep: the merged record carries the leg's
	// arch with a degraded status — or a cached prior result — and the
	// sweep still answers. Always false on a single daemon, which has no
	// replica set to degrade across.
	Degraded bool `json:"degraded,omitempty"`
}

// SweepStatus is the durable, pollable handle of an async sweep.
type SweepStatus struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total_legs"`
	// Completed counts terminal legs (done or failed).
	Completed   int        `json:"completed_legs"`
	Legs        []SweepLeg `json:"legs"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  time.Time  `json:"finished_at,omitzero"`
	// Deadline is the sweep's absolute admission deadline (zero when the
	// request carried no deadline_ms): all legs spend from this one budget,
	// retries and failovers included.
	Deadline time.Time `json:"deadline,omitzero"`
	// Result is the merged record set, byte-identical (Canonical) to the
	// same sweep run synchronously on a single daemon. Set on done.
	Result *Result `json:"result,omitempty"`
}

// Terminal reports whether the sweep has finished (done or failed) — the
// jobs.Handle contract that starts the handle's retention clock.
func (s SweepStatus) Terminal() bool { return s.State.Terminal() }

// SweepSummary is the listing form of a sweep handle (no leg payloads).
type SweepSummary struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Fingerprint string    `json:"fingerprint"`
	Total       int       `json:"total_legs"`
	Completed   int       `json:"completed_legs"`
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// cloneSweepStatus deep-copies a handle for reads outside the store lock:
// legs are mutated in place as they complete, so the slice must not be
// shared. Results are written once and read-only afterwards.
func cloneSweepStatus(s SweepStatus) SweepStatus {
	s.Legs = append([]SweepLeg(nil), s.Legs...)
	return s
}

// ToResult converts a terminal handle into the synchronous SweepResult
// payload — the shared conversion the server's sync path and the client's
// submit-and-wait path both use, so both render one representation.
func (s SweepStatus) ToResult() (SweepResult, error) {
	switch {
	case s.State == StateFailed || s.State == StateExpired:
		return SweepResult{}, errors.New("service: " + s.Error)
	case s.State != StateDone:
		return SweepResult{}, fmt.Errorf("service: sweep %s still %s", s.ID, s.State)
	}
	out := SweepResult{Fingerprint: s.Fingerprint, Result: s.Result}
	for _, leg := range s.Legs {
		out.Jobs = append(out.Jobs, SweepJobRef{
			Config:      leg.Config,
			JobID:       leg.JobID,
			Fingerprint: leg.Fingerprint,
			Shard:       leg.Shard,
			Coalesced:   leg.Coalesced,
			Degraded:    leg.Degraded,
		})
	}
	return out, nil
}

// LegCriticality estimates how much downstream merge work a sweep leg
// gates: the die count of its architecture bounds the (TP, PP) strategy
// space the leg explores, so heavier-die legs run longest and the merge
// barrier waits on them. Dispatching them first (LPT order) minimizes the
// barrier's wait; unknown configs weigh zero and fill idle slots last.
func LegCriticality(config string) int {
	cands, err := cliutil.ArchCandidates(config)
	if err != nil || len(cands) != 1 {
		return 0
	}
	return cands[0].Dies()
}

// sweepDispatchOrder returns leg indices in dispatch order: criticality
// descending, sweep order ascending on ties — deterministic critical-path-
// first submission.
func sweepDispatchOrder(legs []SweepLeg) []int {
	order := make([]int, len(legs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return legs[order[a]].Criticality > legs[order[b]].Criticality
	})
	return order
}

// StartSweep expands a sweep request, registers a durable handle, and
// scatters the legs as prioritized jobs — heaviest first — returning the
// handle immediately. Legs complete in the background; LookupSweep polls
// the handle, WaitSweep blocks on it. A submission failure (backpressure,
// draining) fails the handle and is returned as the error.
func (s *Server) StartSweep(req Request) (SweepStatus, error) {
	norm, parts, err := ExpandSweep(req)
	if err != nil {
		return SweepStatus{}, err
	}
	legs := make([]SweepLeg, len(parts))
	for i, p := range parts {
		legs[i] = SweepLeg{
			Config:      p.Config,
			Fingerprint: p.Fingerprint(),
			Criticality: LegCriticality(p.Config),
			State:       StateQueued,
		}
	}
	id, _ := s.sweeps.Create(func(id string) SweepStatus {
		return SweepStatus{
			ID:          id,
			State:       StateRunning,
			Fingerprint: norm.Fingerprint(),
			Total:       len(parts),
			Legs:        legs,
			SubmittedAt: time.Now(),
		}
	})
	s.mu.Lock()
	s.sweepDone[id] = make(chan struct{})
	s.mu.Unlock()

	for _, i := range sweepDispatchOrder(legs) {
		part := parts[i]
		// Legs ride the sweep's requested class end-to-end: an interactive
		// sweep's legs overtake queued bulk work, a background sweep's legs
		// yield to everything. Only an unlabelled sweep defaults to the
		// bulk sweep-leg class — for legs, "no label" means batch work, not
		// the somebody-is-waiting default a single job gets. The class is
		// clamped to the demand range: a "prefetch"-labelled sweep would
		// put its legs in the speculative class, where demand arrival
		// cancels them and breaks the merge barrier — legs raise to
		// sweep-leg instead (and nothing above interactive exists to raise
		// to).
		if part.Priority == "" || part.Priority == pool.Prefetch.String() {
			part.Priority = pool.SweepLeg.String()
		}
		part.Criticality = legs[i].Criticality
		j, coalesced, err := s.Submit(part)
		if err != nil {
			s.failSweep(id, fmt.Sprintf("sweep part %s: %v", part.Config, err))
			st, _ := s.sweeps.Get(id)
			return st, fmt.Errorf("service: sweep part %s: %w", part.Config, err)
		}
		idx := i
		s.sweeps.Update(id, func(st *SweepStatus) {
			st.Legs[idx].JobID = j.ID
			st.Legs[idx].Coalesced = coalesced
		})
		go s.watchLeg(id, idx, j.ID)
	}
	st, err := s.sweeps.Get(id)
	if err != nil {
		return SweepStatus{}, err
	}
	return st, nil
}

// watchLeg waits for one leg's job to go terminal and folds it into the
// handle. One goroutine per leg: the job's done channel is the only wake
// signal, so no polling.
func (s *Server) watchLeg(id string, idx int, jobID string) {
	j, err := s.Wait(jobID)
	if err != nil {
		j = Job{ID: jobID, State: StateFailed, Error: err.Error()}
	}
	s.legDone(id, idx, j)
}

// legDone folds a terminal leg job into the sweep handle; the last
// successful leg triggers the merge. It is the router's entry point too —
// router legs complete via runLeg rather than a local job, but fold in
// identically.
func (s *Server) legDone(id string, idx int, j Job) {
	var complete bool
	var results []*Result
	err := s.sweeps.Update(id, func(st *SweepStatus) {
		leg := &st.Legs[idx]
		if leg.State.Terminal() {
			return // duplicate completion (failover race); first wins
		}
		leg.State = j.State
		if j.ID != "" {
			leg.JobID = j.ID
		}
		st.Completed++
		if j.State == StateDone {
			leg.Result = j.Result
		} else {
			leg.Error = j.Error
			if st.State == StateRunning {
				// A leg killed by its own deadline surfaces as
				// deadline_exceeded on the sweep too — budget exhaustion,
				// not a fault. Any other leg failure fails the sweep.
				if j.State == StateExpired {
					st.State = StateExpired
					st.Error = fmt.Sprintf("sweep part %s deadline exceeded: %s", leg.Config, j.Error)
				} else {
					st.State = StateFailed
					st.Error = fmt.Sprintf("sweep part %s failed: %s", leg.Config, j.Error)
				}
				st.FinishedAt = time.Now()
			}
		}
		if st.State == StateRunning && st.Completed == st.Total {
			complete = true
			results = make([]*Result, st.Total)
			for i := range st.Legs {
				results[i] = st.Legs[i].Result
			}
		}
	})
	if err != nil {
		return // handle evicted mid-flight; nothing to fold into
	}
	if complete {
		merged, mergeErr := MergeSweep(results)
		s.sweeps.Update(id, func(st *SweepStatus) {
			if mergeErr != nil {
				st.State = StateFailed
				st.Error = mergeErr.Error()
			} else {
				st.State = StateDone
				st.Result = merged
			}
			st.FinishedAt = time.Now()
		})
		if mergeErr == nil {
			s.mu.Lock()
			s.stats.SweepsRun++
			s.mu.Unlock()
		}
	}
	st, err := s.sweeps.Get(id)
	if err == nil && st.State.Terminal() {
		s.finishSweep(id)
	}
}

// failSweep marks the handle failed (if still running) and releases
// waiters.
func (s *Server) failSweep(id, msg string) {
	s.sweeps.Update(id, func(st *SweepStatus) {
		if st.State == StateRunning {
			st.State = StateFailed
			st.Error = msg
			st.FinishedAt = time.Now()
		}
	})
	s.finishSweep(id)
}

// finishSweep closes the handle's done channel, waking synchronous waiters.
func (s *Server) finishSweep(id string) {
	s.mu.Lock()
	if ch, ok := s.sweepDone[id]; ok {
		close(ch)
		delete(s.sweepDone, id)
	}
	s.mu.Unlock()
}

// LookupSweep returns a snapshot of a sweep handle: jobs.ErrGone for an
// evicted handle (HTTP 410), jobs.ErrUnknown for a never-issued ID (404).
func (s *Server) LookupSweep(id string) (SweepStatus, error) {
	return s.sweeps.Get(id)
}

// WaitSweep blocks until the sweep handle goes terminal and returns it.
func (s *Server) WaitSweep(id string) (SweepStatus, error) {
	s.mu.Lock()
	ch := s.sweepDone[id]
	s.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return s.sweeps.Get(id)
}

// Sweeps lists the retained sweep handles, oldest first.
func (s *Server) Sweeps() []SweepSummary {
	var out []SweepSummary
	s.sweeps.Each(func(id string, st SweepStatus) {
		out = append(out, SweepSummary{
			ID:          st.ID,
			State:       st.State,
			Fingerprint: st.Fingerprint,
			Total:       st.Total,
			Completed:   st.Completed,
			SubmittedAt: st.SubmittedAt,
			FinishedAt:  st.FinishedAt,
		})
	})
	return out
}

// SweepLookupStatus converts the handle-store sentinels into the HTTP
// statuses shared by both daemons' handlers: 410 for evicted, 404 for
// never issued.
func SweepLookupStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrGone):
		return 410
	case errors.Is(err, jobs.ErrUnknown):
		return 404
	}
	return 500
}

package service

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/search"
)

// doctorStream encodes a snapshot stream with an arbitrary header and an
// empty body — the forgery RestoreSnapshotFrom must refuse.
func doctorStream(t *testing.T, hdr snapshotHeader) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(snapshotBody{
		Eval: []search.SnapshotEntry{{Key: "poisoned-key"}},
	}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestSnapshotStreamSeedsColdPeer pins the shard warm-join contract: a cold
// server seeded from a warm peer's snapshot stream answers the peer's jobs
// with zero candidate-cache misses and zero re-simulations, byte-identically.
func TestSnapshotStreamSeedsColdPeer(t *testing.T) {
	pred := predictor.NewLookupTable(predictor.TileLevel{})

	warm := NewServer(Options{EvalWorkers: 1}, pred)
	j1, _, err := warm.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	j1, err = warm.Wait(j1.ID)
	if err != nil || j1.State != StateDone {
		t.Fatalf("warm peer job: %v / %s", err, j1.State)
	}
	var stream bytes.Buffer
	info, err := warm.WriteSnapshotTo(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Candidates == 0 || info.Eval == 0 {
		t.Fatalf("warm peer streamed %d candidates / %d evals, want both > 0", info.Candidates, info.Eval)
	}
	warm.Close()

	// "Cold process" join: drop the (process-global) caches, then seed the
	// joining shard from the captured peer stream.
	sched.ResetCache()
	search.DefaultCache().Reset()
	cold := NewServer(Options{EvalWorkers: 1}, pred)
	defer cold.Close()
	if _, err := cold.RestoreSnapshotFrom(&stream); err != nil {
		t.Fatalf("RestoreSnapshotFrom: %v", err)
	}

	candBefore := sched.CacheStats()
	evalBefore := search.DefaultCache().Stats()
	j2, _, err := cold.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	j2, err = cold.Wait(j2.ID)
	if err != nil || j2.State != StateDone {
		t.Fatalf("seeded job: %v / %s", err, j2.State)
	}
	if j2.Result.Canonical != j1.Result.Canonical {
		t.Errorf("seeded shard's result differs from the peer's (%d vs %d bytes)",
			len(j2.Result.Canonical), len(j1.Result.Canonical))
	}
	candAfter := sched.CacheStats()
	if misses := candAfter.Misses - candBefore.Misses; misses != 0 {
		t.Errorf("seeded shard missed the candidate cache %d times, want 0", misses)
	}
	if misses := search.DefaultCache().Stats().Misses - evalBefore.Misses; misses != 0 {
		t.Errorf("seeded shard re-simulated %d strategies, want 0", misses)
	}
}

// TestSnapshotStreamMismatchDiscarded pins the discard paths of a peer
// seed: a stream written under a different FingerprintSchemeVersion and one
// written under a different predictor signature are both rejected with
// ErrStaleSnapshot — and the caches stay untouched, so stale keys are never
// aliased into a fresh shard.
func TestSnapshotStreamMismatchDiscarded(t *testing.T) {
	pred := predictor.NewLookupTable(predictor.TileLevel{})
	s := NewServer(Options{EvalWorkers: 1}, pred)
	defer s.Close()
	sched.ResetCache()
	search.DefaultCache().Reset()

	goodHeader := snapshotHeader{
		Magic:        snapshotMagic,
		Format:       snapshotFormat,
		Scheme:       search.FingerprintSchemeVersion,
		Predictor:    search.PredictorID(pred),
		PredictorSig: predictor.Signature(pred),
	}

	wrongScheme := goodHeader
	wrongScheme.Scheme = search.FingerprintSchemeVersion + 1
	if _, err := s.RestoreSnapshotFrom(doctorStream(t, wrongScheme)); !errors.Is(err, ErrStaleSnapshot) {
		t.Errorf("wrong FingerprintSchemeVersion accepted: err = %v, want ErrStaleSnapshot", err)
	}

	wrongSig := goodHeader
	wrongSig.PredictorSig = "lookup(predictor.Analytical)"
	if _, err := s.RestoreSnapshotFrom(doctorStream(t, wrongSig)); !errors.Is(err, ErrStaleSnapshot) {
		t.Errorf("wrong predictor signature accepted: err = %v, want ErrStaleSnapshot", err)
	}

	wrongMagic := goodHeader
	wrongMagic.Magic = "not-a-snapshot"
	if _, err := s.RestoreSnapshotFrom(doctorStream(t, wrongMagic)); err == nil || errors.Is(err, ErrStaleSnapshot) {
		t.Errorf("wrong magic: err = %v, want a format error", err)
	}

	if st := search.DefaultCache().Stats(); st.Size != 0 {
		t.Errorf("eval cache holds %d entries after discarded seeds, want 0", st.Size)
	}
	if st := sched.CacheStats(); st.Size != 0 {
		t.Errorf("candidate cache holds %d entries after discarded seeds, want 0", st.Size)
	}

	// The matching header restores cleanly — the gate is the version check,
	// not the transport.
	if _, err := s.RestoreSnapshotFrom(doctorStream(t, goodHeader)); err != nil {
		t.Errorf("matching header rejected: %v", err)
	}
}

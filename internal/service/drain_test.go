package service

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/sched"
	"repro/internal/search"
)

// TestDrainRejectsNewWork pins the drain contract: after BeginDrain new
// submissions fail with ErrDraining (HTTP 503 through the handler), the
// health endpoint turns 503 so a routing tier excludes the shard, and work
// accepted before the drain still finishes and stays pollable.
func TestDrainRejectsNewWork(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1}, nil)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	j, _, err := s.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()

	req2 := testRequest()
	req2.Seed = 99
	if _, _, err := s.Submit(req2); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = HTTP %d, want 503", resp.StatusCode)
	}
	if !s.Stats().Draining {
		t.Error("stats do not report draining")
	}

	done, err := s.Wait(j.ID)
	if err != nil || done.State != StateDone {
		t.Fatalf("pre-drain job = %v / %s, want done", err, done.State)
	}

	// POST /v1/drain is the remote form and idempotent.
	resp, err = http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /v1/drain = HTTP %d, want 200", resp.StatusCode)
	}
}

// TestCloseGracefulRunsBacklog distinguishes the two shutdown paths: Close
// drops the queued backlog (jobs marked failed), CloseGraceful executes it.
func TestCloseGracefulRunsBacklog(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 8}, nil)
	ids := make([]string, 0, 3)
	for seed := int64(1); seed <= 3; seed++ {
		req := testRequest()
		req.Seed = seed
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if err := s.CloseGraceful(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok || j.State != StateDone {
			t.Errorf("job %s after graceful close: state %s (%s), want done", id, j.State, j.Error)
		}
	}
}

// TestSnapshotPushEndpoint drives PUT /v1/snapshot: a valid stream restores
// (200 + counts), a stale one is refused with 409, garbage with 400.
func TestSnapshotPushEndpoint(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1}, nil)
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	j, _, err := s.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if done, err := s.Wait(j.ID); err != nil || done.State != StateDone {
		t.Fatalf("warmup job: %v / %s", err, done.State)
	}
	var snap bytes.Buffer
	if _, err := s.WriteSnapshotTo(&snap); err != nil {
		t.Fatal(err)
	}

	put := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/snapshot", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(snap.Bytes()); code != http.StatusOK {
		t.Errorf("valid snapshot push = HTTP %d, want 200", code)
	}
	stale := doctorStream(t, snapshotHeader{
		Magic: snapshotMagic, Format: snapshotFormat,
		Scheme: search.FingerprintSchemeVersion + 1,
	})
	if code := put(stale.Bytes()); code != http.StatusConflict {
		t.Errorf("stale snapshot push = HTTP %d, want 409", code)
	}
	if code := put([]byte("not a snapshot")); code != http.StatusBadRequest {
		t.Errorf("garbage snapshot push = HTTP %d, want 400", code)
	}
}

// TestLoadSnapshotTruncated pins the crash-safety contract of the atomic
// save: a snapshot truncated mid-body (the state a crash between write and
// rename could have published without the temp-file dance) fails the load
// with every cache entry untouched.
func TestLoadSnapshotTruncated(t *testing.T) {
	path := t.TempDir() + "/snap.gob"
	s := NewServer(Options{EvalWorkers: 1, SnapshotPath: path}, nil)
	defer s.Close()
	j, _, err := s.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if done, err := s.Wait(j.ID); err != nil || done.State != StateDone {
		t.Fatalf("warmup job: %v / %s", err, done.State)
	}
	if _, err := s.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	candBefore := sched.CacheStats()
	evalBefore := search.DefaultCache().Stats()
	if _, err := s.LoadSnapshot(); err == nil {
		t.Fatal("loading a truncated snapshot succeeded")
	}
	if st := sched.CacheStats(); st.Size != candBefore.Size {
		t.Errorf("truncated load changed candidate cache size %d -> %d", candBefore.Size, st.Size)
	}
	if st := search.DefaultCache().Stats(); st.Size != evalBefore.Size {
		t.Errorf("truncated load changed eval cache size %d -> %d", evalBefore.Size, st.Size)
	}
}

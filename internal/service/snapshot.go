package service

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/predictor"
	"repro/internal/prefetch"
	"repro/internal/sched"
	"repro/internal/search"
)

// Snapshot file layout (encoding/gob): a header followed by the two shared
// cache dumps. The header versions the file twice over — the file format
// itself, and the cache-key scheme (search.FingerprintSchemeVersion, which
// covers the evaluation fingerprints, the scheduler candidate keys and
// mesh.Signature). A daemon only warm-starts from a snapshot whose scheme
// and predictor identity match its own; anything else is reported stale and
// ignored, so old keys can never alias fresh results.
const (
	snapshotMagic  = "watos-cache-snapshot"
	snapshotFormat = 1
)

type snapshotHeader struct {
	Magic  string
	Format int
	// Scheme is search.FingerprintSchemeVersion at save time.
	Scheme int
	// Predictor is the cache identity (search.PredictorID) of the server
	// predictor at save time: the persisted keys embed it, so the loading
	// process's predictor must hold the same ordinal for the entries to
	// be reachable at all. The default daemon registers its predictor
	// first, so the ordinal is stable across restarts.
	Predictor uint64
	// PredictorSig is the semantic identity (predictor.Signature) of the
	// server predictor. The ordinal alone is a process-local counter — a
	// different predictor that happens to register first elsewhere would
	// collide on it — so the load also requires the signature to match
	// before trusting the cached results.
	PredictorSig string
	SavedAt      int64 // unix nanoseconds
}

type snapshotBody struct {
	Eval       []search.SnapshotEntry
	Candidates []sched.SnapshotEntry
}

// snapshotTrace is the optional third gob section: the request-trace ring at
// save time. Snapshots predating the section simply end after the body, and
// the decoder treats EOF there as an empty trace, so format 1 files remain
// loadable in both directions (old daemon reading a new file stops after the
// body; new daemon reading an old file gets no trace).
type snapshotTrace struct {
	Entries []prefetch.Entry[TracePoint]
}

// SnapshotInfo describes a saved or loaded snapshot.
type SnapshotInfo struct {
	Path         string    `json:"path"`
	Eval         int       `json:"eval_entries"`
	Candidates   int       `json:"candidate_entries"`
	TraceEntries int       `json:"trace_entries"`
	SavedAt      time.Time `json:"saved_at"`
}

// ErrNoSnapshot reports a missing snapshot file on load.
var ErrNoSnapshot = errors.New("service: no snapshot file")

// ErrStaleSnapshot reports a snapshot written under a different fingerprint
// scheme or predictor identity; its keys cannot be trusted and it is
// discarded.
var ErrStaleSnapshot = errors.New("service: stale snapshot (fingerprint scheme or predictor identity changed)")

// WriteSnapshotTo streams a versioned snapshot of the shared caches to w —
// the same header+body layout the snapshot file uses, so the stream a peer
// shard pulls over GET /v1/snapshot and the file a restart loads are one
// format with one validation path.
func (s *Server) WriteSnapshotTo(w io.Writer) (SnapshotInfo, error) {
	now := time.Now()
	hdr := snapshotHeader{
		Magic:        snapshotMagic,
		Format:       snapshotFormat,
		Scheme:       search.FingerprintSchemeVersion,
		Predictor:    search.PredictorID(s.pred),
		PredictorSig: predictor.Signature(s.pred),
		SavedAt:      now.UnixNano(),
	}
	body := snapshotBody{
		Eval:       search.DefaultCache().Snapshot(),
		Candidates: sched.CacheSnapshot(),
	}
	trace := snapshotTrace{Entries: s.trace.Entries()}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return SnapshotInfo{}, fmt.Errorf("service: snapshot encode: %w", err)
	}
	if err := enc.Encode(body); err != nil {
		return SnapshotInfo{}, fmt.Errorf("service: snapshot encode: %w", err)
	}
	if err := enc.Encode(trace); err != nil {
		return SnapshotInfo{}, fmt.Errorf("service: snapshot encode: %w", err)
	}
	return SnapshotInfo{
		Eval:         len(body.Eval),
		Candidates:   len(body.Candidates),
		TraceEntries: len(trace.Entries),
		SavedAt:      now,
	}, nil
}

// RestoreSnapshotFrom decodes a snapshot stream, validates its versioned
// header, and warms the shared caches from it. A stream written under a
// different fingerprint scheme or predictor identity returns
// ErrStaleSnapshot with the caches untouched — a joining shard discards a
// mismatched peer snapshot rather than aliasing its keys.
func (s *Server) RestoreSnapshotFrom(r io.Reader) (SnapshotInfo, error) {
	dec := gob.NewDecoder(r)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return SnapshotInfo{}, fmt.Errorf("service: snapshot header: %w", err)
	}
	if hdr.Magic != snapshotMagic || hdr.Format != snapshotFormat {
		return SnapshotInfo{}, fmt.Errorf("service: not a format-%d snapshot", snapshotFormat)
	}
	if hdr.Scheme != search.FingerprintSchemeVersion ||
		hdr.Predictor != search.PredictorID(s.pred) ||
		hdr.PredictorSig != predictor.Signature(s.pred) {
		return SnapshotInfo{}, ErrStaleSnapshot
	}
	var body snapshotBody
	if err := dec.Decode(&body); err != nil {
		return SnapshotInfo{}, fmt.Errorf("service: snapshot body: %w", err)
	}
	// The trace section is optional: a snapshot written before the trace
	// existed ends at the body, which decodes as a clean EOF here. The caches
	// above are the valuable part, so a malformed trailing section degrades
	// to "no trace" rather than failing the whole restore.
	var trace snapshotTrace
	if err := dec.Decode(&trace); err != nil {
		trace.Entries = nil
	}
	search.DefaultCache().Restore(body.Eval)
	sched.RestoreCache(body.Candidates)
	s.trace.Restore(trace.Entries)
	return SnapshotInfo{
		Eval:         len(body.Eval),
		Candidates:   len(body.Candidates),
		TraceEntries: len(trace.Entries),
		SavedAt:      time.Unix(0, hdr.SavedAt),
	}, nil
}

// SaveSnapshot serializes the shared evaluation and candidate caches to the
// configured snapshot path (write-to-temp + rename, so a crashed save never
// corrupts the previous snapshot).
func (s *Server) SaveSnapshot() (SnapshotInfo, error) {
	path := s.opts.SnapshotPath
	if path == "" {
		return SnapshotInfo{}, errors.New("service: no snapshot path configured")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return SnapshotInfo{}, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer os.Remove(tmp.Name())
	info, err := s.WriteSnapshotTo(tmp)
	if err == nil {
		// Flush to stable storage before the rename publishes the file: a
		// rename can survive a crash that the unsynced data did not, which
		// would leave a truncated "complete" snapshot at the final path.
		err = tmp.Sync()
	}
	if err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return SnapshotInfo{}, err
	}
	info.Path = path
	return info, nil
}

// LoadSnapshot warms the shared caches from the configured snapshot path.
// It returns ErrNoSnapshot when the file does not exist and
// ErrStaleSnapshot when the file was written under a different cache-key
// scheme or predictor identity (the caches are left untouched in both
// cases).
func (s *Server) LoadSnapshot() (SnapshotInfo, error) {
	path := s.opts.SnapshotPath
	if path == "" {
		return SnapshotInfo{}, errors.New("service: no snapshot path configured")
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return SnapshotInfo{}, ErrNoSnapshot
		}
		return SnapshotInfo{}, err
	}
	defer f.Close()
	info, err := s.RestoreSnapshotFrom(f)
	if err != nil {
		return SnapshotInfo{}, err
	}
	info.Path = path
	return info, nil
}

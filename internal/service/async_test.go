package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/jobs"
)

// sweepRequest is the full Table II sweep used across the async tests.
func sweepRequest() Request { return Request{Model: "Llama2-30B", Seq: 2048} }

// TestAsyncSweepHandle checks the tentpole flow: StartSweep returns a
// running handle immediately, legs fold in incrementally, and the final
// merged record is byte-identical to the same sweep run as one job.
func TestAsyncSweepHandle(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 0, JobWorkers: 2, Backlog: 16}, nil)
	defer s.Close()

	st, err := s.StartSweep(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Total != 4 || len(st.Legs) != 4 {
		t.Fatalf("handle = %+v, want 4 legs and an ID", st)
	}
	if st.State.Terminal() {
		t.Fatalf("handle already terminal at submit: %s", st.State)
	}
	for _, leg := range st.Legs {
		if leg.JobID == "" || leg.Fingerprint == "" {
			t.Errorf("leg %s missing its job ref: %+v", leg.Config, leg)
		}
		if leg.Criticality <= 0 {
			t.Errorf("leg %s has no criticality estimate", leg.Config)
		}
	}

	final, err := s.WaitSweep(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Completed != 4 || final.Result == nil {
		t.Fatalf("final handle = state %s, %d/4 legs, result %v (%s)",
			final.State, final.Completed, final.Result != nil, final.Error)
	}
	for _, leg := range final.Legs {
		if leg.State != StateDone || leg.Result == nil {
			t.Errorf("leg %s = %s with result %v, want done with a partial row",
				leg.Config, leg.State, leg.Result != nil)
		}
	}

	// Byte-identity: the async merge equals the one unscattered sweep job.
	j, _, err := s.Submit(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	if j, err = s.Wait(j.ID); err != nil || j.State != StateDone {
		t.Fatalf("single sweep job: %v / %s (%s)", err, j.State, j.Error)
	}
	if final.Result.Canonical != j.Result.Canonical {
		t.Errorf("async merged record differs from single-job sweep (%d vs %d bytes)",
			len(final.Result.Canonical), len(j.Result.Canonical))
	}
	if st := s.Stats(); st.SweepsRun != 1 {
		t.Errorf("SweepsRun = %d, want 1", st.SweepsRun)
	}
}

// TestInteractiveJumpsSweepBacklog is the acceptance pin for priority
// dispatch: with one job worker gated, an async Table II sweep queues four
// legs; an interactive job submitted after them must run first and finish
// while the sweep is still going.
func TestInteractiveJumpsSweepBacklog(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 16}, nil)
	defer s.Close()

	release := make(chan struct{})
	blocked := make(chan struct{})
	if !s.queue.TrySubmit(func() { close(blocked); <-release }) {
		t.Fatal("could not occupy the job worker")
	}
	<-blocked

	sw, err := s.StartSweep(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	interactive := testRequest()
	interactive.Seed = 42 // distinct from every leg fingerprint
	ij, _, err := s.Submit(interactive)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.QueueSweepLeg != 4 || st.QueueInteractive != 1 {
		t.Fatalf("queue lanes = %d sweep-leg / %d interactive, want 4 / 1",
			st.QueueSweepLeg, st.QueueInteractive)
	}

	close(release)
	ijDone, err := s.Wait(ij.ID)
	if err != nil || ijDone.State != StateDone {
		t.Fatalf("interactive job: %v / %s (%s)", err, ijDone.State, ijDone.Error)
	}
	// The single worker dispatched the interactive job before any leg, so
	// at the moment it finished the sweep cannot have completed.
	mid, err := s.LookupSweep(sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State.Terminal() {
		t.Error("sweep already terminal when the interactive job finished")
	}

	final, err := s.WaitSweep(sw.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("sweep: %v / %s (%s)", err, final.State, final.Error)
	}
	if !ijDone.FinishedAt.Before(final.FinishedAt) {
		t.Errorf("interactive finished at %v, sweep at %v — interactive must win",
			ijDone.FinishedAt, final.FinishedAt)
	}
	// Every leg started after the interactive job finished.
	for _, leg := range final.Legs {
		j, ok := s.Job(leg.JobID)
		if !ok {
			t.Fatalf("leg job %s missing", leg.JobID)
		}
		if j.StartedAt.Before(ijDone.FinishedAt) {
			t.Errorf("leg %s started %v, before the interactive job finished %v",
				leg.Config, j.StartedAt, ijDone.FinishedAt)
		}
	}
}

// TestPromoteOnCoalesce checks priority-inversion avoidance: an interactive
// submission that coalesces onto a queued sweep leg promotes the leg into
// the interactive lane instead of waiting at bulk priority.
func TestPromoteOnCoalesce(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 16}, nil)
	defer s.Close()
	release := make(chan struct{})
	blocked := make(chan struct{})
	if !s.queue.TrySubmit(func() { close(blocked); <-release }) {
		t.Fatal("could not occupy the job worker")
	}
	<-blocked

	sw, err := s.StartSweep(sweepRequest())
	if err != nil {
		t.Fatal(err)
	}
	dup := sweepRequest()
	dup.Config = "config2" // same fingerprint as the config2 leg
	j, coalesced, err := s.Submit(dup)
	if err != nil || !coalesced {
		t.Fatalf("duplicate submit: coalesced=%v err=%v", coalesced, err)
	}
	var legJob string
	for _, leg := range sw.Legs {
		if leg.Config == "config2" {
			legJob = leg.JobID
		}
	}
	if j.ID != legJob {
		t.Fatalf("duplicate landed on job %s, want the config2 leg %s", j.ID, legJob)
	}
	if st := s.Stats(); st.QueueInteractive != 1 || st.QueueSweepLeg != 3 {
		t.Errorf("queue lanes after promote = %d interactive / %d sweep-leg, want 1 / 3",
			st.QueueInteractive, st.QueueSweepLeg)
	}
	close(release)
	if _, err := s.WaitSweep(sw.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSweepHandleEviction checks the bounded handle store end to end: with
// SweepHistory=1 the older terminal handle is evicted and polls for it
// report gone (410), while a never-issued ID reports unknown (404).
func TestSweepHandleEviction(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, SweepHistory: 1, SweepTTL: -1}, nil)
	defer s.Close()
	first, err := s.Sweep(Request{Model: "Llama2-30B", Config: "config3", Seq: 2048})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	second, err := s.Sweep(Request{Model: "Llama2-30B", Config: "config2", Seq: 2048})
	if err != nil {
		t.Fatal(err)
	}
	_ = second
	if _, err := s.LookupSweep("swp-1"); !errors.Is(err, jobs.ErrGone) {
		t.Errorf("evicted handle: err = %v, want ErrGone", err)
	}
	if got := SweepLookupStatus(jobs.ErrGone); got != 410 {
		t.Errorf("SweepLookupStatus(ErrGone) = %d, want 410", got)
	}
	if _, err := s.LookupSweep("swp-2"); err != nil {
		t.Errorf("retained handle: %v", err)
	}
	if _, err := s.LookupSweep("swp-99"); !errors.Is(err, jobs.ErrUnknown) {
		t.Errorf("never-issued handle: err = %v, want ErrUnknown", err)
	}
	if st := s.Stats(); st.SweepsEvicted != 1 || st.SweepsRetained != 1 {
		t.Errorf("sweep gauges = %d evicted / %d retained, want 1 / 1",
			st.SweepsEvicted, st.SweepsRetained)
	}
}

// TestJobGone pins the 404-vs-410 distinction on the job store: evicted IDs
// are gone, never-issued IDs are unknown.
func TestJobGone(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, History: 2, HistoryGrace: -1}, nil)
	defer s.Close()
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		req := testRequest()
		req.Seed = seed
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids[:2] {
		if _, ok := s.Job(id); ok {
			t.Fatalf("job %s not evicted with History=2", id)
		}
		if !s.JobGone(id) {
			t.Errorf("JobGone(%s) = false for an evicted job", id)
		}
	}
	for _, id := range []string{"job-999", "swp-1", "garbage", "job-x"} {
		if s.JobGone(id) {
			t.Errorf("JobGone(%s) = true for a never-issued ID", id)
		}
	}
	if s.JobGone(ids[3]) {
		t.Error("JobGone reported a live job as gone")
	}
	if st := s.Stats(); st.JobsEvicted != 2 {
		t.Errorf("JobsEvicted = %d, want 2", st.JobsEvicted)
	}
}

// TestHistoryTTLExpiry checks terminal job records expire by age even when
// the History cap is far from reached.
func TestHistoryTTLExpiry(t *testing.T) {
	s := NewServer(Options{EvalWorkers: 1, HistoryTTL: time.Nanosecond, HistoryGrace: -1}, nil)
	defer s.Close()
	j, _, err := s.Submit(testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j.ID); err != nil {
		t.Fatal(err)
	}
	// Any later submission triggers eviction; the nanosecond TTL has long
	// lapsed by then.
	req := testRequest()
	req.Seed = 2
	j2, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(j2.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(j.ID); ok {
		t.Error("TTL-expired job still retrievable")
	}
	if !s.JobGone(j.ID) {
		t.Error("TTL-expired job not reported gone")
	}
}

// TestRequestPriorityValidation checks Priority is validated but never part
// of the fingerprint: the same work at different priorities must coalesce.
func TestRequestPriorityValidation(t *testing.T) {
	if _, err := (Request{Priority: "turbo"}).Normalize(); err == nil {
		t.Error("unknown priority accepted")
	}
	base := testRequest()
	hi := base
	hi.Priority = "interactive"
	lo := base
	lo.Priority = "background"
	lo.Criticality = 7
	a, _ := base.Normalize()
	b, _ := hi.Normalize()
	c, _ := lo.Normalize()
	if a.Fingerprint() != b.Fingerprint() || a.Fingerprint() != c.Fingerprint() {
		t.Error("priority fields leaked into the fingerprint")
	}
}

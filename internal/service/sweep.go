package service

import (
	"errors"
	"fmt"

	"repro/internal/cliutil"
)

// Sweep support: a Table II-style architecture sweep decomposes into one
// single-architecture request per candidate, because core.Explore evaluates
// candidates independently and the canonical exploration record is the
// concatenation of the per-architecture records in sweep order. That makes a
// sweep the unit of scatter-gather for the sharded tier — each architecture
// routes to its fingerprint's shard — while MergeSweep reconstitutes a
// Result byte-identical to the one sweep job run on a single daemon.
//
// Contract on infeasible architectures: a scattered sweep requires every
// part to succeed — one infeasible architecture fails the whole sweep with
// that part's error. This deliberately differs from an in-process
// core.Explore, which tolerates per-architecture failures and reports the
// best feasible candidate: a failed part has no Result, so its per-arch
// error line cannot be reconstructed byte-identically, and a loud error
// beats a silently divergent record. In practice the distinction is latent —
// every zoo model at CLI-reachable workloads is either feasible on all
// Table II configurations or on none (where both paths fail alike).

// SweepJobRef locates one architecture's job inside a scattered sweep.
type SweepJobRef struct {
	// Config is the architecture restriction of this part.
	Config string `json:"config"`
	// JobID is the job the part ran as (shard-namespaced when routed).
	JobID string `json:"job_id"`
	// Fingerprint is the part's canonical request fingerprint — its routing
	// and dedup key.
	Fingerprint string `json:"fingerprint"`
	// Shard names the backend the part ran on (router-filled; empty on a
	// single daemon).
	Shard string `json:"shard,omitempty"`
	// Coalesced reports whether the part piggybacked on an identical
	// in-flight job instead of starting a fresh execution.
	Coalesced bool `json:"coalesced,omitempty"`
	// Degraded marks a part the router absorbed instead of failing the
	// sweep (replica set exhausted / in-flight deadline expiry): its row
	// in the merged record is a degraded placeholder or a cached prior
	// result. See MergeSweepDegraded.
	Degraded bool `json:"degraded,omitempty"`
}

// SweepResult is the POST /v1/sweeps payload: the merged sweep outcome plus
// the per-architecture jobs it was gathered from.
type SweepResult struct {
	// Fingerprint identifies the normalized sweep request.
	Fingerprint string        `json:"fingerprint"`
	Jobs        []SweepJobRef `json:"jobs"`
	// Result is the merged record set, byte-identical (Canonical) to the
	// same sweep run as one job.
	Result *Result `json:"result"`
}

// ExpandSweep normalizes a sweep request and splits it into one
// single-architecture request per swept candidate, in sweep order. Every
// part is already normalized (Normalize is idempotent and Config-pointwise),
// so part fingerprints are valid routing keys.
func ExpandSweep(req Request) (norm Request, parts []Request, err error) {
	norm, err = req.Normalize()
	if err != nil {
		return norm, nil, err
	}
	configs, err := cliutil.SweepConfigs(norm.Config)
	if err != nil {
		return norm, nil, err
	}
	parts = make([]Request, len(configs))
	for i, cfg := range configs {
		p := norm
		p.Config = cfg
		parts[i] = p
	}
	return norm, parts, nil
}

// MergeSweep recombines per-architecture Results (in sweep order) into the
// Result of the equivalent single-job sweep: the canonical records
// concatenate, the per-architecture summaries concatenate, and the summary
// fields come from the winning part under core.Explore's rule (first
// strictly-highest throughput). Every part must be a completed
// single-architecture Result; an infeasible architecture fails its part's
// job before merging, exactly as a single-architecture CLI run would fail.
func MergeSweep(parts []*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("service: empty sweep")
	}
	var best *Result
	for _, p := range parts {
		if p == nil {
			return nil, errors.New("service: sweep part missing its result")
		}
		if best == nil || p.Throughput > best.Throughput {
			best = p
		}
	}
	out := *best
	out.PerArch = nil
	out.Canonical = ""
	for _, p := range parts {
		out.PerArch = append(out.PerArch, p.PerArch...)
		out.Canonical += p.Canonical
	}
	return &out, nil
}

// MergeSweepDegraded merges a partially-served sweep: parts is in sweep
// order with nil entries where a leg could not be served (replica set
// exhausted, in-flight deadline expiry), configs names every leg, and
// degradedErr[i] says why part i is missing. Each missing leg contributes a
// per-arch "degraded: ..." marker row — the same shape an in-process
// core.Explore gives an infeasible architecture — instead of failing the
// merge, so a sweep through a brownout still answers with every row it
// could gather. The merged record is NOT byte-identical to a healthy sweep
// and must never enter a completed-result cache; callers flag it through
// the leg/job Degraded markers. A sweep with no servable part at all still
// merges: all rows are markers and the summary fields stay zero.
func MergeSweepDegraded(parts []*Result, configs, degradedErr []string) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("service: empty sweep")
	}
	var best *Result
	for _, p := range parts {
		if p != nil && (best == nil || p.Throughput > best.Throughput) {
			best = p
		}
	}
	var out Result
	if best != nil {
		out = *best
	}
	out.PerArch = nil
	out.Canonical = ""
	for i, p := range parts {
		if p == nil {
			msg := "degraded: " + degradedErr[i]
			out.PerArch = append(out.PerArch, ArchSummary{Name: configs[i], Status: msg})
			out.Canonical += fmt.Sprintf("arch=%s err=%s\n", configs[i], msg)
			continue
		}
		out.PerArch = append(out.PerArch, p.PerArch...)
		out.Canonical += p.Canonical
	}
	return &out, nil
}

// Sweep scatters a sweep request into per-architecture jobs on this daemon
// and gathers them into one merged record set. It is the synchronous facade
// over the async handle machinery (StartSweep + WaitSweep) — one code path
// produces both the 202-handle flow and this blocking flow, which is what
// guarantees the merged Canonical stays byte-identical between them. Parts
// submit through the normal job path at sweep-leg priority, so identical
// in-flight architectures coalesce, every part lands in the shared caches,
// and interactive jobs overtake the legs. A part that fails (or a backlog
// rejection) fails the whole sweep.
func (s *Server) Sweep(req Request) (SweepResult, error) {
	st, err := s.StartSweep(req)
	if err != nil {
		return SweepResult{}, err
	}
	st, err = s.WaitSweep(st.ID)
	if err != nil {
		return SweepResult{}, err
	}
	return st.ToResult()
}

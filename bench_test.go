// Package repro's benchmark harness regenerates every table and figure of
// the WATOS paper as testing.B benchmarks: `go test -bench=BenchmarkFig15`
// reruns the Fig 15 architectural DSE and reports its headline metric.
// Ablation benchmarks cover the design decisions called out in DESIGN.md §5.
package repro

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ga"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/predictor"
	"repro/internal/recompute"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sim"
)

// benchExperiment runs one figure/table runner per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		// Cold-start each iteration: the process-wide memo caches would
		// otherwise serve iterations 2..N and the timing would measure
		// LRU lookups, not the experiment.
		search.DefaultCache().Reset()
		sched.ResetCache()
		t, err := runner()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig01(b *testing.B)   { benchExperiment(b, "1") }
func BenchmarkFig02(b *testing.B)   { benchExperiment(b, "2") }
func BenchmarkFig05a(b *testing.B)  { benchExperiment(b, "5a") }
func BenchmarkFig05b(b *testing.B)  { benchExperiment(b, "5b") }
func BenchmarkFig05c(b *testing.B)  { benchExperiment(b, "5c") }
func BenchmarkFig06a(b *testing.B)  { benchExperiment(b, "6a") }
func BenchmarkFig06b(b *testing.B)  { benchExperiment(b, "6b") }
func BenchmarkFig10b(b *testing.B)  { benchExperiment(b, "10b") }
func BenchmarkFig10c(b *testing.B)  { benchExperiment(b, "10c") }
func BenchmarkFig15(b *testing.B)   { benchExperiment(b, "15") }
func BenchmarkFig16(b *testing.B)   { benchExperiment(b, "16") }
func BenchmarkFig17(b *testing.B)   { benchExperiment(b, "17") }
func BenchmarkFig18(b *testing.B)   { benchExperiment(b, "18") }
func BenchmarkFig19(b *testing.B)   { benchExperiment(b, "19") }
func BenchmarkFig20(b *testing.B)   { benchExperiment(b, "20") }
func BenchmarkFig21(b *testing.B)   { benchExperiment(b, "21") }
func BenchmarkFig22(b *testing.B)   { benchExperiment(b, "22") }
func BenchmarkFig23(b *testing.B)   { benchExperiment(b, "23") }
func BenchmarkFig24a(b *testing.B)  { benchExperiment(b, "24a") }
func BenchmarkFig24b(b *testing.B)  { benchExperiment(b, "24b") }
func BenchmarkFig25(b *testing.B)   { benchExperiment(b, "25") }
func BenchmarkTableI(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B) { benchExperiment(b, "table2") }

var benchPred = predictor.NewLookupTable(predictor.TileLevel{})

func benchWork() model.Workload {
	return model.Workload{GlobalBatch: 64, MicroBatch: 1, SeqLen: 2048}
}

// BenchmarkAblationGCMR compares GCMR against naive local-only
// recomputation (DESIGN.md §5): the ratio of the two searches' throughputs
// is reported as gcmr-gain-x.
func BenchmarkAblationGCMR(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		gcmr, err := sched.Search(hw.Config3(), model.GPT_175B(), benchWork(), benchPred,
			sched.Options{FixedTP: 8, FixedPP: 7, DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		naive, err := sched.Search(hw.Config3(), model.GPT_175B(), benchWork(), benchPred,
			sched.Options{FixedTP: 8, FixedPP: 7, NaiveRecompute: true, DisableMemScheduler: true, DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		gain = gcmr.Best.Report.Throughput / naive.Best.Report.Throughput
	}
	b.ReportMetric(gain, "gcmr-gain-x")
}

// BenchmarkAblationPlacement compares location-aware placement with the
// serpentine baseline on the Fig 11 workload.
func BenchmarkAblationPlacement(b *testing.B) {
	m := mesh.New(hw.Config3())
	pipe := make([]float64, 8)
	for i := range pipe {
		pipe[i] = 1e9
	}
	wl := placement.Workload{
		PipelineBytes: pipe,
		Pairs: []recompute.MemPair{
			{Sender: 0, Helper: 7, Bytes: 2e9},
			{Sender: 1, Helper: 6, Bytes: 2e9},
		},
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		serp, err := placement.Serpentine(m, 7, 8)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := placement.Optimize(m, 7, 8, wl, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		ratio = placement.GlobalCost(m, serp, wl) / placement.GlobalCost(m, opt, wl)
	}
	b.ReportMetric(ratio, "cost-reduction-x")
}

// BenchmarkAblationDataflow compares the hybrid dataflow selection with a
// fixed output-stationary schedule.
func BenchmarkAblationDataflow(b *testing.B) {
	die := predictor.Context(hw.Config3())
	_ = die
	for i := 0; i < b.N; i++ {
		g, err := sched.Search(hw.Config3(), model.Llama3_70B(), benchWork(), benchPred,
			sched.Options{FixedTP: 4, FixedPP: 14, DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

// BenchmarkAblationGA measures the GA's refinement over the greedy solution.
func BenchmarkAblationGA(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		greedy, err := sched.Search(hw.Config3(), model.GPT_175B(), benchWork(), benchPred,
			sched.Options{FixedTP: 4, FixedPP: 14, DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		ga, err := sched.Search(hw.Config3(), model.GPT_175B(), benchWork(), benchPred,
			sched.Options{FixedTP: 4, FixedPP: 14, UseGA: true, GAGenerations: 40, DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		gain = ga.Best.Report.Throughput / greedy.Best.Report.Throughput
	}
	b.ReportMetric(gain, "ga-gain-x")
}

// BenchmarkAblationPruning measures how much of the search space the early
// pruner removes.
func BenchmarkAblationPruning(b *testing.B) {
	var prunedFrac float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Search(hw.Config3(), model.GPT_175B(), benchWork(), benchPred, sched.Options{DisableCache: true})
		if err != nil {
			b.Fatal(err)
		}
		prunedFrac = float64(res.PrunedCount) / float64(len(res.Explored))
	}
	b.ReportMetric(prunedFrac*100, "pruned-%")
}

// BenchmarkCollectives measures the collective algorithms' raw cost on an
// 8-die group (Fig 21 substrate).
func BenchmarkCollectives(b *testing.B) {
	m := mesh.New(hw.Config3())
	group := collective.Rectangle(0, 0, 4, 2)
	for _, algo := range []collective.Algorithm{collective.Ring, collective.BiRing, collective.TwoD, collective.TACOS} {
		b.Run(strings.ReplaceAll(algo.String(), "/", "-"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := collective.AllReduce(m, group, 1e9, algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearch measures one full strategy search (the DSE inner loop; the
// paper reports 0.274 s per 100 optimizer steps on a Xeon).
func BenchmarkSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
			sched.Options{DisableCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSequential is the single-threaded, uncached baseline of the
// concurrent evaluation runtime: every candidate is re-simulated on one
// worker, reproducing the seed's strictly sequential behaviour.
func BenchmarkSearchSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
			sched.Options{Workers: 1, DisableCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchParallel runs the same search on the full worker pool with
// the memoization cache enabled — the production configuration. Against
// BenchmarkSearchSequential it measures the combined worker-pool speedup
// (scales with cores) and cache speedup (repeated searches are served from
// memoized reports); the hit rate over the run is reported alongside.
func BenchmarkSearchParallel(b *testing.B) {
	search.DefaultCache().Reset()
	sched.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
			sched.Options{Workers: 0}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := sched.CacheStats()
	b.ReportMetric(s.HitRate()*100, "cache-hit-%")
}

// BenchmarkSearchCacheHitRate isolates the memoization layer: each iteration
// runs a cold search followed by an identical hot search on a fresh cache,
// reporting the steady-state hit rate (the re-simulation work a shared cache
// removes from baselines, ablations and figure reproductions).
func BenchmarkSearchCacheHitRate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		search.DefaultCache().Reset()
		sched.ResetCache()
		for pass := 0; pass < 2; pass++ {
			if _, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
				sched.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		rate = sched.CacheStats().HitRate()
	}
	b.ReportMetric(rate*100, "cache-hit-%")
}

// benchStrategy returns a fixed (config, mesh, strategy) triple — the best
// Llama2-30B strategy on Config3 — for evaluator micro-benchmarks.
func benchStrategy(b *testing.B) (engine.Config, *mesh.Mesh, sim.Strategy) {
	b.Helper()
	res, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
		sched.Options{FixedTP: 4, FixedPP: 7})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Config{
		Wafer: hw.Config3(), Spec: model.Llama2_30B(), Workload: benchWork(),
		TP: res.Best.TP, PP: res.Best.PP, Collective: res.Best.Collective, Predictor: benchPred,
	}
	return cfg, mesh.New(hw.Config3()), res.Best.Strategy
}

// BenchmarkEvaluateCold measures one cache-cold sim.Evaluate — the inner
// loop of every search — with the collective plan store cleared each
// iteration, so ring embedding and routing are included.
func BenchmarkEvaluateCold(b *testing.B) {
	cfg, m, strat := benchStrategy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		collective.ResetPlanCache()
		if _, err := sim.Evaluate(cfg, m, strat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateWarm measures sim.Evaluate with warm collective plans —
// the steady-state per-candidate cost inside one search.
func BenchmarkEvaluateWarm(b *testing.B) {
	cfg, m, strat := benchStrategy(b)
	if _, err := sim.Evaluate(cfg, m, strat); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Evaluate(cfg, m, strat); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAnnealSwap measures one annealer iteration — propose a random
// two-anchor swap, score it, accept or revert — on the incremental Scorer
// or the PR3-era full Eq 2 re-evaluation. The substrate comes from
// internal/benchutil, shared with cmd/bench so the smoke gate and the
// recorded trajectory measure the same workload.
func benchAnnealSwap(b *testing.B, m *mesh.Mesh, tp, pp, npairs int, incremental bool) {
	anchors, w, err := benchutil.AnnealSubstrate(m, tp, pp, npairs)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var cycle func()
	if incremental {
		cycle = benchutil.AnnealSwapCycle(placement.NewScorer(m, anchors, w), pp, rng)
	} else {
		cycle = benchutil.AnnealSwapCycleFull(m, anchors, w, m.NewLinkSet(), pp, rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkAnnealSwap compares the incremental Scorer against the PR3-era
// full re-evaluation per annealer iteration, at production scale (12×12
// wafer, pp=128 single-die stages, 32 Mem_pairs) and at the Config3 scale
// (pp=32, 8 pairs). The incremental variants stay allocation-free.
func BenchmarkAnnealSwap(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchAnnealSwap(b, benchutil.ScaleWafer(), 1, 128, 32, true) })
	b.Run("full-reeval", func(b *testing.B) { benchAnnealSwap(b, benchutil.ScaleWafer(), 1, 128, 32, false) })
	b.Run("pp32-incremental", func(b *testing.B) { benchAnnealSwap(b, mesh.New(hw.Config3()), 1, 32, 8, true) })
	b.Run("pp32-full-reeval", func(b *testing.B) { benchAnnealSwap(b, mesh.New(hw.Config3()), 1, 32, 8, false) })
}

// benchAnnealSwapBatch measures one K-wide speculative batch pass on a
// ScorerBatch sharing the Scorer's committed state, reporting per-candidate
// cost alongside the per-pass numbers. The cycle comes from
// internal/benchutil, shared with cmd/bench.
func benchAnnealSwapBatch(b *testing.B, m *mesh.Mesh, tp, pp, npairs, k int) {
	anchors, w, err := benchutil.AnnealSubstrate(m, tp, pp, npairs)
	if err != nil {
		b.Fatal(err)
	}
	sc := placement.NewScorer(m, anchors, w)
	batch := placement.NewScorerBatch(sc, k)
	rng := rand.New(rand.NewSource(1))
	cycle := benchutil.AnnealBatchCycle(batch, pp, k, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/candidate")
}

// BenchmarkAnnealSwapBatch measures the batched candidate evaluator against
// the scalar BenchmarkAnnealSwap per-candidate numbers, at the production
// scale (12×12 wafer, pp=128, 32 pairs) and the Config3 scale (pp=32,
// 8 pairs), for window widths 8 and 32.
func BenchmarkAnnealSwapBatch(b *testing.B) {
	b.Run("batch8", func(b *testing.B) { benchAnnealSwapBatch(b, benchutil.ScaleWafer(), 1, 128, 32, 8) })
	b.Run("batch32", func(b *testing.B) { benchAnnealSwapBatch(b, benchutil.ScaleWafer(), 1, 128, 32, 32) })
	b.Run("pp32-batch8", func(b *testing.B) { benchAnnealSwapBatch(b, mesh.New(hw.Config3()), 1, 32, 8, 8) })
	b.Run("pp32-batch32", func(b *testing.B) { benchAnnealSwapBatch(b, mesh.New(hw.Config3()), 1, 32, 8, 32) })
}

// BenchmarkOptimizePlacement measures the full §IV-C-1 annealing search
// (200·pp iterations) end to end, from the Config3 scale up to the
// 12×12-wafer pp=128 case, with the speculative batched evaluator (the
// Optimize default) against the scalar reference loop.
func BenchmarkOptimizePlacement(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		scale  bool
		tp, pp int
		pairs  int
		window int
	}{
		{"pp8", false, 7, 8, 2, placement.DefaultSpecWindow},
		{"pp32", false, 1, 32, 8, placement.DefaultSpecWindow},
		{"pp32-scalar", false, 1, 32, 8, 1},
		{"pp128", true, 1, 128, 32, placement.DefaultSpecWindow},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m := mesh.New(hw.Config3())
			if cfg.scale {
				m = benchutil.ScaleWafer()
			}
			_, w, err := benchutil.AnnealSubstrate(m, cfg.tp, cfg.pp, cfg.pairs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := placement.OptimizeWindow(m, cfg.tp, cfg.pp, w, rand.New(rand.NewSource(int64(i))), cfg.window); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchGAGeneration is the §IV-D GA inner loop — one generation of
// mutation, component-cached fitness scoring and selection — via a
// fixed-generation Optimize run divided by the generation count.
func benchGAGeneration(b *testing.B, placementBatch int) {
	const gens = 16
	prob, seed, err := benchutil.GAProblem()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ga.Optimize(prob, seed, ga.Options{
			Population: 24, Generations: gens, Omega: 0.5, Seed: int64(i), Workers: 1,
			PlacementBatch: placementBatch,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report per-generation cost alongside the raw per-run numbers.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*gens), "ns/generation")
}

// BenchmarkGAGeneration compares the batched placement-cost leg (the
// default: one ScorerBatch pass per chunk of one-transposition genomes)
// against the scalar per-leg evaluation.
func BenchmarkGAGeneration(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchGAGeneration(b, 0) })
	b.Run("scalar", func(b *testing.B) { benchGAGeneration(b, 1) })
}

// BenchmarkPredictor measures lookup-table hit latency (§IV-F "negligible
// overhead" claim).
func BenchmarkPredictor(b *testing.B) {
	die := predictor.Context(hw.Config3())
	g, err := sched.Search(hw.Config3(), model.Llama2_30B(), benchWork(), benchPred,
		sched.Options{FixedTP: 4, FixedPP: 7})
	if err != nil {
		b.Fatal(err)
	}
	_ = g
	samples := predictor.Corpus([]predictor.DieContext{die}, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPred.Predict(samples[i%len(samples)].Op, die)
	}
}

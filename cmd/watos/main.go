// Command watos runs a WATOS co-exploration: given a model name and an
// optional architecture restriction, it searches training strategies (and
// architectures) and prints the best configuration with its performance
// report.
//
//	watos -model Llama3-70B                 # strategy+arch co-exploration over Table II
//	watos -model GPT-175B -config config3   # strategy search on one architecture
//	watos -model Llama2-30B -batch 128 -seq 4096 -ga
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/units"
)

func main() {
	modelName := flag.String("model", "Llama2-30B", "model name from the zoo (see -models)")
	configName := flag.String("config", "", "pin one architecture: config1..config4, mesh-switch; empty = explore Table II")
	batch := flag.Int("batch", 64, "global batch size (sequences per iteration)")
	micro := flag.Int("micro", 1, "micro-batch size per pipeline stage")
	seq := flag.Int("seq", 0, "sequence length (0 = model default, capped at 4096)")
	useGA := flag.Bool("ga", false, "enable the genetic-algorithm global optimizer")
	workers := flag.Int("workers", 0, "evaluation worker-pool width (0 = all CPUs, 1 = sequential)")
	noCache := flag.Bool("nocache", false, "disable the strategy-evaluation memoization cache")
	listModels := flag.Bool("models", false, "list available models")
	flag.Parse()

	if *listModels {
		for _, s := range append(append(model.EvaluationModels(), model.EmergingModels()...), model.UltraLargeModels()...) {
			fmt.Printf("%-24s %6.1fB params  %s\n", s.Name, s.EffectiveParams()/1e9, s.Arch)
		}
		return
	}

	spec, ok := model.ByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q (use -models to list)\n", *modelName)
		os.Exit(2)
	}
	seqLen := *seq
	if seqLen == 0 {
		seqLen = spec.DefaultSeqLen
		if seqLen > 4096 {
			seqLen = 4096
		}
	}
	work := model.Workload{GlobalBatch: *batch, MicroBatch: *micro, SeqLen: seqLen}
	if err := work.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fw := core.New()
	fw.Options = sched.Options{UseGA: *useGA, Workers: *workers, DisableCache: *noCache}

	var candidates []hw.WaferConfig
	switch *configName {
	case "":
		candidates = hw.TableII()
	case "config1":
		candidates = []hw.WaferConfig{hw.Config1()}
	case "config2":
		candidates = []hw.WaferConfig{hw.Config2()}
	case "config3":
		candidates = []hw.WaferConfig{hw.Config3()}
	case "config4":
		candidates = []hw.WaferConfig{hw.Config4()}
	case "mesh-switch":
		candidates = []hw.WaferConfig{hw.Config3MeshSwitch()}
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *configName)
		os.Exit(2)
	}

	res, err := fw.Explore(candidates, spec, work)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("model:    %s (%.1fB params, %s)\n", spec.Name, spec.EffectiveParams()/1e9, spec.Arch)
	fmt.Printf("workload: batch %d, micro-batch %d, seq %d\n", work.GlobalBatch, work.MicroBatch, work.SeqLen)
	fmt.Printf("best architecture: %s\n", res.Best.Wafer)
	b := res.Best.Result.Best
	fmt.Printf("best strategy:     TP=%d PP=%d DP=%d, collective=%s\n", b.TP, b.PP, b.Report.DP, b.Collective)
	fmt.Printf("iteration time:    %.3f s\n", b.Report.IterationTime)
	fmt.Printf("throughput:        %.1f TFLOP/s useful (%.1f incl. recompute)\n",
		b.Report.Throughput/units.TFLOPS, b.Report.TotalThroughput/units.TFLOPS)
	fmt.Printf("recompute frac:    %.1f%%   bubbles: %.1f%%   compute util: %.1f%%\n",
		b.Report.RecomputeFraction*100, b.Report.BubbleFraction*100, b.Report.ComputeUtilization*100)
	fmt.Printf("DRAM util:         %.1f%%   D2D util: %.1f%%\n",
		b.Report.DRAMUtilization*100, b.Report.MeanLinkUtilization*100)
	if b.Strategy.Recompute != nil && len(b.Strategy.Recompute.Pairs) > 0 {
		fmt.Printf("mem pairs:         %d (overflow %.1f GB balanced on-wafer)\n",
			len(b.Strategy.Recompute.Pairs), b.Strategy.Recompute.OverflowBytes/units.GB)
	}
	fmt.Printf("explored:          %d strategy candidates", len(res.Best.Result.Explored))
	fmt.Printf(" (%d pruned early)\n", res.Best.Result.PrunedCount)
	if !*noCache {
		cc := sched.CacheStats()
		cs := search.DefaultCache().Stats()
		fmt.Printf("candidate cache:   %d hits / %d misses (%.0f%% hit rate)\n",
			cc.Hits, cc.Misses, cc.HitRate()*100)
		fmt.Printf("eval cache:        %d hits / %d misses (%.0f%% hit rate)\n",
			cs.Hits, cs.Misses, cs.HitRate()*100)
	}
	for _, ar := range res.PerArch {
		status := "ok"
		if ar.Err != nil {
			status = ar.Err.Error()
		} else if ar.Result != nil && ar.Result.Best != nil {
			status = fmt.Sprintf("%.1f TFLOP/s (TP=%d PP=%d)",
				ar.Result.Best.Report.Throughput/units.TFLOPS, ar.Result.Best.TP, ar.Result.Best.PP)
		}
		fmt.Printf("  %-10s %s\n", ar.Wafer.Name, status)
	}
}

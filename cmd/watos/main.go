// Command watos runs a WATOS co-exploration: given a model name and an
// optional architecture restriction, it searches training strategies (and
// architectures) and prints the best configuration with its performance
// report.
//
//	watos -model Llama3-70B                 # strategy+arch co-exploration over Table II
//	watos -model GPT-175B -config config3   # strategy search on one architecture
//	watos -model Llama2-30B -batch 128 -seq 4096 -ga
//	watos -model Llama2-30B -remote localhost:8080   # delegate to a running watosd
//
// With -remote the search runs on a resident watosd daemon (shared warm
// caches, request dedup) instead of in-process; results are byte-identical
// either way (-canon prints the canonical exploration record to prove it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/units"
)

func main() {
	modelName := flag.String("model", "Llama2-30B", "model name from the zoo (see -models)")
	configName := flag.String("config", "", "pin one architecture: config1..config4, mesh-switch; empty = explore Table II")
	batch := flag.Int("batch", 64, "global batch size (sequences per iteration)")
	micro := flag.Int("micro", 1, "micro-batch size per pipeline stage")
	seq := flag.Int("seq", 0, "sequence length (0 = model default, capped at 4096)")
	useGA := flag.Bool("ga", false, "enable the genetic-algorithm global optimizer")
	canon := flag.Bool("canon", false, "print the canonical exploration record instead of the summary (byte-identity checks)")
	listModels := flag.Bool("models", false, "list available models")
	workers := cliutil.WorkersFlag()
	noCache := cliutil.NoCacheFlag()
	remote := cliutil.RemoteFlag()
	deadline := flag.Duration("deadline", 0, "end-to-end deadline for a -remote request (0 = none); expiry answers deadline_exceeded, not failure")
	priority := flag.String("priority", "", "scheduling class for a -remote request: interactive (default), sweep-leg or background")
	retryBudget := flag.Int("retry-budget", 0, "token-bucket retry budget for -remote backpressure (429/503 + Retry-After) and reconnects; 0 = no backpressure retries")
	flag.Parse()

	if *listModels {
		cliutil.ListModels(os.Stdout)
		return
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	spec, err := cliutil.Model(*modelName)
	fail(err)
	req := service.Request{
		Model:    spec.Name,
		Config:   *configName,
		Batch:    *batch,
		Micro:    *micro,
		Seq:      cliutil.SeqLen(spec, *seq),
		UseGA:    *useGA,
		Priority: *priority,
	}
	if *deadline > 0 {
		req.DeadlineMS = deadline.Milliseconds()
	}
	req, err = req.Normalize()
	fail(err)

	if *remote != "" {
		// Worker-pool width and cache policy are daemon-side; results are
		// invariant to both, but a user asking for them locally should
		// know they do not travel with the request.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" || f.Name == "nocache" {
				fmt.Fprintf(os.Stderr, "watos: -%s is ignored with -remote (server-side setting)\n", f.Name)
			}
		})
		runRemote(*remote, req, *canon, *retryBudget)
		return
	}
	// Deadlines, priority classes and retry budgets govern admission on a
	// daemon or router; an in-process search has no queue to shed from.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "deadline", "priority", "retry-budget":
			fmt.Fprintf(os.Stderr, "watos: -%s is ignored without -remote\n", f.Name)
		}
	})

	candidates, err := cliutil.ArchCandidates(req.Config)
	fail(err)
	work := req.Workload()

	fw := core.New()
	fw.Options = sched.Options{UseGA: req.UseGA, Workers: *workers, DisableCache: *noCache}
	res, err := fw.Explore(candidates, spec, work)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *canon {
		fmt.Print(service.Canonical(res))
		return
	}

	fmt.Printf("model:    %s (%.1fB params, %s)\n", spec.Name, spec.EffectiveParams()/1e9, spec.Arch)
	fmt.Printf("workload: batch %d, micro-batch %d, seq %d\n", work.GlobalBatch, work.MicroBatch, work.SeqLen)
	fmt.Printf("best architecture: %s\n", res.Best.Wafer)
	r := service.BuildResult(res)
	printResultBody(r)
	if !*noCache {
		cc := sched.CacheStats()
		cs := search.DefaultCache().Stats()
		fmt.Printf("candidate cache:   %d hits / %d misses (%.0f%% hit rate)\n",
			cc.Hits, cc.Misses, cc.HitRate()*100)
		fmt.Printf("eval cache:        %d hits / %d misses (%.0f%% hit rate)\n",
			cs.Hits, cs.Misses, cs.HitRate()*100)
	}
	printPerArch(r.PerArch)
}

// printResultBody renders the summary shared by the local and remote paths
// from the one wire representation, so the two outputs cannot drift.
func printResultBody(r *service.Result) {
	fmt.Printf("best strategy:     TP=%d PP=%d DP=%d, collective=%s\n", r.TP, r.PP, r.DP, r.Collective)
	fmt.Printf("iteration time:    %.3f s\n", r.IterationTime)
	fmt.Printf("throughput:        %.1f TFLOP/s useful (%.1f incl. recompute)\n",
		r.Throughput/units.TFLOPS, r.TotalThroughput/units.TFLOPS)
	fmt.Printf("recompute frac:    %.1f%%   bubbles: %.1f%%   compute util: %.1f%%\n",
		r.RecomputeFraction*100, r.BubbleFraction*100, r.ComputeUtilization*100)
	fmt.Printf("DRAM util:         %.1f%%   D2D util: %.1f%%\n",
		r.DRAMUtilization*100, r.MeanLinkUtilization*100)
	if r.MemPairs > 0 {
		fmt.Printf("mem pairs:         %d (overflow %.1f GB balanced on-wafer)\n",
			r.MemPairs, r.OverflowBytes/units.GB)
	}
	fmt.Printf("explored:          %d strategy candidates (%d pruned early)\n", r.Explored, r.Pruned)
}

// printPerArch renders the per-architecture status lines.
func printPerArch(perArch []service.ArchSummary) {
	for _, ar := range perArch {
		status := ar.Status
		if status == "ok" {
			status = fmt.Sprintf("%.1f TFLOP/s (TP=%d PP=%d)", ar.Throughput/units.TFLOPS, ar.TP, ar.PP)
		}
		fmt.Printf("  %-10s %s\n", ar.Name, status)
	}
}

// runRemote delegates the search to a running watosd daemon or watos-router.
// Architecture sweeps (no -config) go through the scatter-gather sweep
// endpoint, so a router fans them out per-architecture across its shards;
// the merged record set is byte-identical to a single-daemon or in-process
// sweep either way.
func runRemote(addr string, req service.Request, canon bool, retryBudget int) {
	ctx := context.Background()
	c := client.New(addr)
	if retryBudget > 0 {
		// Shed answers (429/503 + Retry-After) become bounded waits instead of
		// hard failures: each retry spends a token, each success earns a
		// fraction back, so a persistently overloaded fleet still fails fast.
		c.Budget = client.NewRetryBudget(retryBudget, 0.1)
	}
	if err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "watosd at %s unreachable: %v\n", addr, err)
		os.Exit(1)
	}
	if req.Config == "" {
		runRemoteSweep(ctx, c, addr, req, canon)
		return
	}
	job, err := c.Run(ctx, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if job.State != service.StateDone {
		fmt.Fprintf(os.Stderr, "remote job %s %s: %s\n", job.ID, job.State, job.Error)
		os.Exit(1)
	}
	r := job.Result
	if canon {
		fmt.Print(r.Canonical)
		return
	}
	fmt.Printf("remote:   watosd %s (job %s)\n", addr, job.ID)
	fmt.Printf("model:    %s\n", req.Model)
	fmt.Printf("workload: batch %d, micro-batch %d, seq %d\n", req.Batch, req.Micro, req.Seq)
	fmt.Printf("best architecture: %s\n", r.BestArch)
	printResultBody(r)
	if st, err := c.Stats(ctx); err == nil {
		fmt.Printf("daemon:            %d jobs done, %d coalesced (%.0f%% dedup), candidate cache %.0f%% hits\n",
			st.JobsDone, st.JobsCoalesced, st.DedupRate()*100, st.CandidateCache.HitRate()*100)
	}
	printPerArch(r.PerArch)
}

// runRemoteSweep scatter-gathers an architecture sweep through the async
// sweep endpoint (per-architecture legs, fanned across shards behind a
// router): submit the handle, then poll it, surfacing each architecture's
// row as its leg completes — heavy legs dispatch first, so the rows stream
// in roughly critical-path order while the tail still runs.
func runRemoteSweep(ctx context.Context, c *client.Client, addr string, req service.Request, canon bool) {
	st, err := c.StartSweep(ctx, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	onLeg := func(leg service.SweepLeg) {
		where := leg.JobID
		if leg.Shard != "" {
			where = leg.Shard + " (" + leg.JobID + ")"
		}
		line := fmt.Sprintf("  part %-12s -> %s", leg.Config, where)
		if leg.Result != nil {
			line += fmt.Sprintf(": %.1f TFLOP/s", leg.Result.Throughput/units.TFLOPS)
		} else if leg.Error != "" {
			line += ": " + leg.Error
		}
		fmt.Println(line)
	}
	if canon {
		onLeg = nil // stream nothing; the canonical record is the output
	} else {
		fmt.Printf("remote:   %s (scattered sweep %s, %d architectures)\n", addr, st.ID, st.Total)
	}
	if st, err = c.WaitSweep(ctx, st.ID, onLeg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sw, err := st.ToResult()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := sw.Result
	if canon {
		fmt.Print(r.Canonical)
		return
	}
	fmt.Printf("model:    %s\n", req.Model)
	fmt.Printf("workload: batch %d, micro-batch %d, seq %d\n", req.Batch, req.Micro, req.Seq)
	fmt.Printf("best architecture: %s\n", r.BestArch)
	printResultBody(r)
	printPerArch(r.PerArch)
}

// Command watos-router is the sharded evaluation tier's front-end: it
// maintains a live shard map over a fleet of watosd daemons (health-checked,
// with automatic exclusion and readmission), routes jobs by stable hashing
// of the canonical request fingerprint so identical jobs always land on the
// same shard's warm caches, and scatter-gathers Table II-style sweeps
// per-architecture across the fleet.
//
//	watos-router -addr :8090 -shards host1:8080,host2:8080
//	watos -model Llama2-30B -config config3 -remote localhost:8090
//	watos -model Llama2-30B -remote localhost:8090      # scattered sweep
//
// It serves the watosd API surface (plus GET/POST/DELETE /v1/shards), so the
// typed client and `watos -remote` work against a router unchanged; results
// are byte-identical to a single daemon and to an in-process search. Each
// fingerprint routes to a replica set (-replicas) with in-band failover,
// sweep legs re-dispatch through shard crashes (-sweep-retries,
// -sweep-leg-timeout), and DELETE /v1/shards drains a departing shard's warm
// cache slice to the shards inheriting its fingerprints before removal.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	shards := flag.String("shards", "", "comma-separated watosd shard addresses (host:port,...)")
	interval := flag.Duration("health-interval", 2*time.Second, "shard health-probe interval")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	failAfter := flag.Int("fail-after", 2, "consecutive failed probes before a shard is excluded from routing")
	replicas := flag.Int("replicas", 2, "replica-set size R per fingerprint: primary plus failover targets (1 disables replication)")
	sweepRetries := flag.Int("sweep-retries", 2, "re-dispatches per sweep leg after a retryable failure (shard crash mid-sweep)")
	legTimeout := flag.Duration("sweep-leg-timeout", 0, "per-attempt deadline for one sweep leg (0 = only the request's deadline)")
	resultCache := flag.Int("result-cache", 4096, "completed-result cache entries: repeat submissions of an answered fingerprint are served at the router (0 disables)")
	prefetchOn := flag.Bool("prefetch", false, "speculative cache warming: accepted demand jobs predict their sweep neighbors and pre-evaluate them through idle shard capacity into the result cache")
	prefetchFanout := flag.Int("prefetch-fanout", 3, "speculative evaluations issued per accepted demand job (with -prefetch)")
	sweepTTL := flag.Duration("sweep-ttl", 15*time.Minute, "terminal async sweep handles expire after this age (negative = never)")
	sweepHistory := flag.Int("sweep-history", 256, "retained async sweep handles (oldest finished evicted first)")
	breakerOff := flag.Bool("breaker-off", false, "disable per-shard circuit breakers (routing then trusts the health probe alone)")
	breakerWindow := flag.Int("breaker-window", 20, "circuit breaker rolling round-trip window size")
	breakerMinSamples := flag.Int("breaker-min-samples", 8, "window occupancy required before a breaker may trip")
	breakerErrorRate := flag.Float64("breaker-error-rate", 0.5, "failed round-trip fraction over the window that opens a shard's breaker")
	breakerP95 := flag.Duration("breaker-p95", 2*time.Second, "window p95 round-trip latency that opens a shard's breaker (negative disables the latency signal)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker routing exclusion before a single half-open trial is admitted")
	pprofOn := cliutil.PprofFlag()
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "watos-router: -shards must list at least one watosd address")
		os.Exit(2)
	}

	m := shard.NewMap(addrs, shard.Options{
		HealthInterval: *interval,
		ProbeTimeout:   *probeTimeout,
		FailAfter:      *failAfter,
		Replicas:       *replicas,
		Breaker: shard.BreakerOptions{
			Disabled:   *breakerOff,
			Window:     *breakerWindow,
			MinSamples: *breakerMinSamples,
			ErrorRate:  *breakerErrorRate,
			LatencyP95: *breakerP95,
			Cooldown:   *breakerCooldown,
		},
	})
	m.Probe(context.Background())
	for _, st := range m.Statuses() {
		state := "healthy"
		if !st.Healthy {
			state = "unreachable (" + st.LastError + ")"
		}
		log.Printf("shard %s at %s: %s", st.Name, st.Addr, state)
	}
	m.Start()
	defer m.Close()

	router := shard.NewRouter(m)
	router.SweepRetries = *sweepRetries
	router.LegTimeout = *legTimeout
	router.Cache = shard.NewResultCache(*resultCache)
	router.SweepTTL = *sweepTTL
	router.SweepHistory = *sweepHistory
	router.Prefetch = *prefetchOn
	router.PrefetchFanout = *prefetchFanout
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           cliutil.WithPprof(router.Handler(), *pprofOn),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("watos-router listening on %s over %d shards", *addr, len(addrs))

	select {
	case <-ctx.Done():
		log.Print("shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "watos-router:", err)
		os.Exit(1)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("watos-router stopped")
}

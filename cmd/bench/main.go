// Command bench runs the repository's tier-2 performance benchmarks
// in-process (explicit timed loops with -benchmem semantics) and writes a
// machine-readable BENCH_<tag>.json so the repo carries a perf trajectory
// across PRs. The acceptance benchmark is search-sequential-nocache: one
// full strategy search with the evaluation and candidate memoization caches
// disabled, i.e. the cache-cold inner loop.
//
// Usage:
//
//	go run ./cmd/bench                # writes BENCH_pr2.json
//	go run ./cmd/bench -out perf.json # custom output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/sim"
)

// entry is one benchmark's summary.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the BENCH_*.json schema.
type report struct {
	Tag        string  `json:"tag"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
	// Baseline carries the pre-PR numbers of the acceptance benchmark so
	// the improvement factors are recorded alongside the measurement.
	Baseline        entry   `json:"baseline"`
	BaselineNote    string  `json:"baseline_note"`
	SpeedupNs       float64 `json:"speedup_ns_vs_baseline"`
	SpeedupAllocs   float64 `json:"speedup_allocs_vs_baseline"`
	AcceptanceBench string  `json:"acceptance_benchmark"`
}

// baselinePR1 is BenchmarkSearchSequential measured at the PR 1 tree (the
// map-based mesh/collective hot path), on the reference CI-class machine.
var baselinePR1 = entry{
	Name:        "search-sequential-nocache",
	Iterations:  3,
	NsPerOp:     247068009,
	AllocsPerOp: 1630840,
	BytesPerOp:  246066109,
}

// benchTarget is the wall-clock budget of one measured run. The iteration
// count is derived from a single warmup run, clamped to [minIters, maxIters].
const (
	benchTarget = time.Second
	minIters    = 5
	maxIters    = 1 << 20
)

// run measures fn with -benchmem semantics: forced GC, warmup, then a timed
// loop with Mallocs/HeapAlloc deltas. (The in-process testing.Benchmark
// harness inflates wall time on cgroup-limited machines, so the measurement
// loop is explicit — the numbers agree with `go test -bench`.)
func run(name string, fn func()) entry {
	runtime.GC()
	warm := time.Now()
	fn()
	iters := int(benchTarget / (time.Since(warm) + 1))
	if iters < minIters {
		iters = minIters
	}
	if iters > maxIters {
		iters = maxIters
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0, bytes0 := ms.Mallocs, ms.TotalAlloc
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	e := entry{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: int64((ms.Mallocs - mallocs0) / uint64(iters)),
		BytesPerOp:  int64((ms.TotalAlloc - bytes0) / uint64(iters)),
	}
	fmt.Printf("%-32s %12.0f ns/op %10d allocs/op %12d B/op   (%d iters)\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, iters)
	return e
}

func main() {
	out := flag.String("out", "BENCH_pr2.json", "output JSON path")
	flag.Parse()

	pred := predictor.NewLookupTable(predictor.TileLevel{})
	work := model.Workload{GlobalBatch: 64, MicroBatch: 1, SeqLen: 2048}

	rep := report{
		Tag:       "pr2",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Baseline:  baselinePR1,
		BaselineNote: "baseline measured on the PR-1 tree on the reference dev machine; " +
			"speedup_ns_vs_baseline is only meaningful on comparable hardware — " +
			"speedup_allocs_vs_baseline is machine-independent",
		AcceptanceBench: "search-sequential-nocache",
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	// Acceptance benchmark: single-worker search with memoization disabled —
	// the strictly sequential, cache-cold configuration of the seed.
	seq := run("search-sequential-nocache", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 1, DisableCache: true})
		fail(err)
	})
	rep.Benchmarks = append(rep.Benchmarks, seq)
	rep.SpeedupNs = baselinePR1.NsPerOp / seq.NsPerOp
	rep.SpeedupAllocs = float64(baselinePR1.AllocsPerOp) / float64(seq.AllocsPerOp)

	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Benchmarks = append(rep.Benchmarks, run("search-parallel-cached", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 0})
		fail(err)
	}))

	// Evaluator micro-benchmarks on the best fixed strategy.
	res, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
		sched.Options{FixedTP: 4, FixedPP: 7})
	fail(err)
	cfg := engine.Config{
		Wafer: hw.Config3(), Spec: model.Llama2_30B(), Workload: work,
		TP: res.Best.TP, PP: res.Best.PP, Collective: res.Best.Collective, Predictor: pred,
	}
	m := mesh.New(hw.Config3())
	strat := res.Best.Strategy

	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-cold", func() {
		collective.ResetPlanCache()
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-warm", func() {
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))

	group := collective.Rectangle(0, 0, 4, 2)
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-warm", func() {
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-cold", func() {
		collective.ResetPlanCache()
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s  (speedup vs PR1 baseline: %.2fx ns/op, %.2fx allocs/op)\n",
		*out, rep.SpeedupNs, rep.SpeedupAllocs)
}

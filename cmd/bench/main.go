// Command bench runs the repository's tier-2 performance benchmarks
// in-process (explicit timed loops with -benchmem semantics) and writes a
// machine-readable BENCH_<tag>.json so the repo carries a perf trajectory
// across PRs. The acceptance benchmark is search-sequential-nocache: one
// full strategy search with the evaluation and candidate memoization caches
// disabled, i.e. the cache-cold inner loop. Prior PRs' acceptance numbers
// are carried forward in the baselines list.
//
// The service benchmarks drive an in-process watosd (internal/service)
// through its HTTP API with concurrent identical and distinct jobs,
// reporting the dedup hit rate and sustained jobs/sec.
//
// Usage:
//
//	go run ./cmd/bench                # writes BENCH_pr3.json
//	go run ./cmd/bench -out perf.json # custom output path
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
)

// entry is one benchmark's summary.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// taggedEntry is a prior PR's acceptance-benchmark measurement, carried
// forward so the trajectory travels with the repo.
type taggedEntry struct {
	Tag string `json:"tag"`
	entry
}

// serviceEntry is one service-throughput measurement.
type serviceEntry struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	Coalesced   uint64  `json:"coalesced"`
	DedupRate   float64 `json:"dedup_rate"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
}

// report is the BENCH_*.json schema.
type report struct {
	Tag        string         `json:"tag"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	Benchmarks []entry        `json:"benchmarks"`
	Service    []serviceEntry `json:"service_benchmarks"`
	// Baselines carries the acceptance benchmark of every prior PR
	// (oldest first), so improvement factors are recorded alongside the
	// measurement.
	Baselines       []taggedEntry      `json:"baselines"`
	BaselineNote    string             `json:"baseline_note"`
	SpeedupNs       map[string]float64 `json:"speedup_ns_vs"`
	SpeedupAllocs   map[string]float64 `json:"speedup_allocs_vs"`
	AcceptanceBench string             `json:"acceptance_benchmark"`
}

// Prior acceptance-benchmark measurements on the reference CI-class
// machine: PR 1 is the map-based mesh/collective hot path, PR 2 the dense
// plan-cached tree (from BENCH_pr2.json).
var priorBaselines = []taggedEntry{
	{Tag: "pr1", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  3,
		NsPerOp:     247068009,
		AllocsPerOp: 1630840,
		BytesPerOp:  246066109,
	}},
	{Tag: "pr2", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  19,
		NsPerOp:     43253024.10526316,
		AllocsPerOp: 51357,
		BytesPerOp:  7922048,
	}},
}

// benchTarget is the wall-clock budget of one measured run. The iteration
// count is derived from a single warmup run, clamped to [minIters, maxIters].
const (
	benchTarget = time.Second
	minIters    = 5
	maxIters    = 1 << 20
)

// run measures fn with -benchmem semantics: forced GC, warmup, then a timed
// loop with Mallocs/HeapAlloc deltas. (The in-process testing.Benchmark
// harness inflates wall time on cgroup-limited machines, so the measurement
// loop is explicit — the numbers agree with `go test -bench`.)
func run(name string, fn func()) entry {
	runtime.GC()
	warm := time.Now()
	fn()
	iters := int(benchTarget / (time.Since(warm) + 1))
	if iters < minIters {
		iters = minIters
	}
	if iters > maxIters {
		iters = maxIters
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0, bytes0 := ms.Mallocs, ms.TotalAlloc
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	e := entry{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: int64((ms.Mallocs - mallocs0) / uint64(iters)),
		BytesPerOp:  int64((ms.TotalAlloc - bytes0) / uint64(iters)),
	}
	fmt.Printf("%-32s %12.0f ns/op %10d allocs/op %12d B/op   (%d iters)\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, iters)
	return e
}

// serviceThroughput starts an in-process watosd behind a real HTTP
// listener, fires the jobs concurrently through the typed client and
// reports wall time plus the observed dedup rate. distinct jobs vary the
// seed so each is a separate fingerprint; identical jobs coalesce. The
// shared predictor keeps cache keys stable across bursts, so the second
// burst genuinely runs over the caches the first one warmed.
func serviceThroughput(name string, jobs int, distinct bool, pred predictor.Predictor) serviceEntry {
	srv := service.NewServer(service.Options{EvalWorkers: 1, JobWorkers: 2, Backlog: jobs + 1}, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	ctx := context.Background()

	start := time.Now()
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	var submitErr error
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.Request{Model: "Llama2-30B", Config: "config3", Seq: 2048, Seed: 7}
			if distinct {
				req.Seed = int64(100 + i)
			}
			j, err := c.Submit(ctx, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				submitErr = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	if submitErr != nil {
		fmt.Fprintln(os.Stderr, "bench:", submitErr)
		os.Exit(1)
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)
	st, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	e := serviceEntry{
		Name:        name,
		Jobs:        jobs,
		Coalesced:   st.JobsCoalesced,
		DedupRate:   st.DedupRate(),
		WallSeconds: wall.Seconds(),
		JobsPerSec:  float64(jobs) / wall.Seconds(),
	}
	fmt.Printf("%-32s %12.2f jobs/s %9.0f%% dedup %12.3f s wall   (%d jobs)\n",
		name, e.JobsPerSec, e.DedupRate*100, e.WallSeconds, jobs)
	return e
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "output JSON path")
	flag.Parse()

	pred := predictor.NewLookupTable(predictor.TileLevel{})
	work := model.Workload{GlobalBatch: 64, MicroBatch: 1, SeqLen: 2048}

	rep := report{
		Tag:       "pr3",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Baselines: priorBaselines,
		BaselineNote: "baselines measured on the respective PR trees on the reference dev machine; " +
			"speedup_ns_vs is only meaningful on comparable hardware — " +
			"speedup_allocs_vs is machine-independent",
		AcceptanceBench: "search-sequential-nocache",
		SpeedupNs:       map[string]float64{},
		SpeedupAllocs:   map[string]float64{},
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	// Acceptance benchmark: single-worker search with memoization disabled —
	// the strictly sequential, cache-cold configuration of the seed.
	seq := run("search-sequential-nocache", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 1, DisableCache: true})
		fail(err)
	})
	rep.Benchmarks = append(rep.Benchmarks, seq)
	for _, b := range priorBaselines {
		rep.SpeedupNs[b.Tag] = b.NsPerOp / seq.NsPerOp
		rep.SpeedupAllocs[b.Tag] = float64(b.AllocsPerOp) / float64(seq.AllocsPerOp)
	}

	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Benchmarks = append(rep.Benchmarks, run("search-parallel-cached", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 0})
		fail(err)
	}))

	// Evaluator micro-benchmarks on the best fixed strategy.
	res, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
		sched.Options{FixedTP: 4, FixedPP: 7})
	fail(err)
	cfg := engine.Config{
		Wafer: hw.Config3(), Spec: model.Llama2_30B(), Workload: work,
		TP: res.Best.TP, PP: res.Best.PP, Collective: res.Best.Collective, Predictor: pred,
	}
	m := mesh.New(hw.Config3())
	strat := res.Best.Strategy

	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-cold", func() {
		collective.ResetPlanCache()
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-warm", func() {
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))

	group := collective.Rectangle(0, 0, 4, 2)
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-warm", func() {
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-cold", func() {
		collective.ResetPlanCache()
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))

	// Service throughput: concurrent identical jobs coalesce onto one
	// execution (the dedup path), concurrent distinct jobs stream through
	// the bounded queue over warm caches (the resident-daemon path). Cold
	// caches first so the identical burst includes one real execution;
	// both bursts share the process predictor so their cache keys agree.
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, serviceThroughput("service-identical-burst", 32, false, pred))
	rep.Service = append(rep.Service, serviceThroughput("service-distinct-burst", 32, true, pred))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s  (speedup vs pr2 baseline: %.2fx ns/op, %.2fx allocs/op)\n",
		*out, rep.SpeedupNs["pr2"], rep.SpeedupAllocs["pr2"])
}

// Command bench runs the repository's tier-2 performance benchmarks
// in-process (explicit timed loops with -benchmem semantics) and writes a
// machine-readable BENCH_<tag>.json so the repo carries a perf trajectory
// across PRs. The acceptance benchmark is search-sequential-nocache: one
// full strategy search with the evaluation and candidate memoization caches
// disabled, i.e. the cache-cold inner loop. Prior PRs' acceptance numbers
// are carried forward in the baselines list.
//
// The service benchmarks drive an in-process watosd (internal/service)
// through its HTTP API with concurrent identical and distinct jobs,
// reporting the dedup hit rate and sustained jobs/sec. The router
// benchmarks put the sharded tier (internal/shard) in front: the same
// bursts routed by fingerprint across 1 vs 2 watosd shards (scaling), an
// identical burst through the router (routed-dedup hit rate — stable
// hashing keeps shard-side singleflight firing), and scatter-gathered
// Table II sweeps. The kill-mid-burst benchmark tears one replicated
// shard's listener down in the middle of a distinct burst and reports the
// completion rate (1.0 = no job was lost for good) plus the mean failover
// latency of re-dispatching the lost jobs to the surviving replicas.
//
// The annealer-iteration benchmarks compare the incremental Eq 2 Scorer
// against the PR3-era full re-evaluation measured in the same run (tagged
// pr3-full-reeval in the baselines list), and a testing.AllocsPerRun guard
// fails the run outright if the incremental inner loop ever allocates. The
// batched evaluator (placement.ScorerBatch) is measured per candidate as
// anneal-swap-batch8/-batch32 next to the scalar per-iteration numbers,
// under the same zero-allocation guard, and the end-to-end annealing
// searches record the speculative default against an in-run scalar
// reference (optimize-placement-pp32-scalar, window 1) so the batching
// speedup is measured on the same machine in the same process.
//
// Each timed loop is repeated -reps times and the best repetition is
// recorded: the CI-class container is single-CPU and run-to-run noise
// reaches ±15%, so min-of-N is the stable estimator of the code's cost
// (allocation counts are deterministic and taken from the first rep).
//
// Usage:
//
// The saturation benchmarks drive a single-worker daemon at a sustained
// 2x+ offered load twice — once with overload protection on (per-class
// admission budgets, end-to-end deadlines) and once with everything
// admitted — and record goodput (completed within target / offered) plus
// the interactive p95; the run fails outright if protection does not win
// both.
//
// The prefetch-replay pair records a sweep trajectory on a throwaway
// daemon, pulls it back over GET /v1/trace, and replays it against fresh
// daemons with the speculative prefetch lane on vs off; the run fails
// outright unless prefetch wins the warm-hit rate strictly.
//
//	go run ./cmd/bench                # writes BENCH_pr10.json
//	go run ./cmd/bench -out perf.json # custom output path
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/ga"
	"repro/internal/hw"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/search/pool"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/shard"
	"repro/internal/sim"
)

// entry is one benchmark's summary.
type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// taggedEntry is a prior PR's acceptance-benchmark measurement, carried
// forward so the trajectory travels with the repo.
type taggedEntry struct {
	Tag string `json:"tag"`
	entry
}

// serviceEntry is one service- or router-throughput measurement.
type serviceEntry struct {
	Name string `json:"name"`
	// Shards is the watosd fleet size behind the router (0 = direct daemon).
	Shards      int     `json:"shards,omitempty"`
	Jobs        int     `json:"jobs"`
	Coalesced   uint64  `json:"coalesced"`
	DedupRate   float64 `json:"dedup_rate"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// CompletionRate is the fraction of the burst that reached a result,
	// re-dispatched jobs included (chaos benchmarks only; 1 = lossless).
	CompletionRate float64 `json:"completion_rate,omitempty"`
	// RecoveredJobs counts jobs lost with a killed shard and recovered by
	// re-dispatching through the router to a surviving replica.
	RecoveredJobs int `json:"recovered_jobs,omitempty"`
	// FailoverMs is the mean latency of one recovery: loss detected to
	// recomputed result in hand on a survivor.
	FailoverMs float64 `json:"failover_latency_ms,omitempty"`
	// GoodputRate is the fraction of OFFERED jobs that completed within
	// their latency target (saturation benchmarks only): shed, expired and
	// past-target completions all count against it.
	GoodputRate float64 `json:"goodput_rate,omitempty"`
	// InteractiveP95Ms is the p95 submit-to-done latency of the completed
	// interactive jobs (saturation benchmarks only).
	InteractiveP95Ms float64 `json:"interactive_p95_ms,omitempty"`
	// ShedJobs / ExpiredJobs split the non-completions: refused at
	// admission (429) vs cancelled by their own deadline while queued.
	ShedJobs    int `json:"shed_jobs,omitempty"`
	ExpiredJobs int `json:"expired_jobs,omitempty"`
	// WarmHitRate is the fraction of fresh demand submissions that found
	// their caches already warm (prefetch-replay benchmarks only).
	WarmHitRate float64 `json:"warm_hit_rate,omitempty"`
	// MeanLatencyMs is the mean submit-to-done latency of the demand steps
	// (prefetch-replay benchmarks only).
	MeanLatencyMs float64 `json:"mean_latency_ms,omitempty"`
	// PrefetchIssued / PrefetchUseful count speculative evaluations admitted
	// and the distinct prefetched fingerprints demand later used.
	PrefetchIssued int `json:"prefetch_issued,omitempty"`
	PrefetchUseful int `json:"prefetch_useful,omitempty"`
}

// report is the BENCH_*.json schema.
type report struct {
	Tag        string         `json:"tag"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	Benchmarks []entry        `json:"benchmarks"`
	Service    []serviceEntry `json:"service_benchmarks"`
	// Baselines carries the acceptance benchmark of every prior PR
	// (oldest first), so improvement factors are recorded alongside the
	// measurement.
	Baselines       []taggedEntry      `json:"baselines"`
	BaselineNote    string             `json:"baseline_note"`
	SpeedupNs       map[string]float64 `json:"speedup_ns_vs"`
	SpeedupAllocs   map[string]float64 `json:"speedup_allocs_vs"`
	AcceptanceBench string             `json:"acceptance_benchmark"`
}

// Prior acceptance-benchmark measurements on the reference CI-class
// machine: PR 1 is the map-based mesh/collective hot path, PR 2 the dense
// plan-cached tree (from BENCH_pr2.json), PR 3 the service-era tree (from
// BENCH_pr3.json), PR 4 the incremental-scorer tree (from BENCH_pr4.json),
// PR 5 the sharded-tier tree (from BENCH_pr5.json), PR 6 the
// batched-evaluator tree (from BENCH_pr6.json), PR 7 the fleet-resilience
// tree (from BENCH_pr7.json), PR 8 the async-job-subsystem tree (from
// BENCH_pr8.json), PR 9 the overload-protection tree (from BENCH_pr9.json).
// The pr3-full-reeval annealer baseline is measured live
// in this run (the full-evaluation path still exists as
// placement.EvalAnchors), so its speedup factor is machine-exact.
var priorBaselines = []taggedEntry{
	{Tag: "pr1", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  3,
		NsPerOp:     247068009,
		AllocsPerOp: 1630840,
		BytesPerOp:  246066109,
	}},
	{Tag: "pr2", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  19,
		NsPerOp:     43253024.10526316,
		AllocsPerOp: 51357,
		BytesPerOp:  7922048,
	}},
	{Tag: "pr3", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  21,
		NsPerOp:     45128743.333333336,
		AllocsPerOp: 51364,
		BytesPerOp:  7922227,
	}},
	{Tag: "pr4", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  16,
		NsPerOp:     45791043.125,
		AllocsPerOp: 58052,
		BytesPerOp:  8406789,
	}},
	{Tag: "pr5", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  22,
		NsPerOp:     42581610.77272727,
		AllocsPerOp: 58052,
		BytesPerOp:  8406810,
	}},
	{Tag: "pr6", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  26,
		NsPerOp:     34619261.73076923,
		AllocsPerOp: 57986,
		BytesPerOp:  9165701,
	}},
	{Tag: "pr7", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  23,
		NsPerOp:     40383667.52173913,
		AllocsPerOp: 57986,
		BytesPerOp:  9165715,
	}},
	{Tag: "pr8", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  23,
		NsPerOp:     36608750.82608695,
		AllocsPerOp: 57986,
		BytesPerOp:  9165693,
	}},
	{Tag: "pr9", entry: entry{
		Name:        "search-sequential-nocache",
		Iterations:  21,
		NsPerOp:     42697981.71428572,
		AllocsPerOp: 57986,
		BytesPerOp:  9165726,
	}},
}

// pr5Placement carries the PR 5 tree's search inner-loop measurements
// (from BENCH_pr5.json, same reference machine) forward: the batched
// evaluator of this PR is judged against them, benchmark by benchmark, via
// the pr5(<name>) speedup keys.
var pr5Placement = []taggedEntry{
	{Tag: "pr5", entry: entry{Name: "anneal-swap", Iterations: 162972, NsPerOp: 1533.7013351986845, AllocsPerOp: 0, BytesPerOp: 0}},
	{Tag: "pr5", entry: entry{Name: "anneal-swap-pp32", Iterations: 262329, NsPerOp: 1033.058480000305, AllocsPerOp: 0, BytesPerOp: 0}},
	{Tag: "pr5", entry: entry{Name: "optimize-placement-pp8", Iterations: 1224, NsPerOp: 820168.9232026144, AllocsPerOp: 72, BytesPerOp: 16446}},
	{Tag: "pr5", entry: entry{Name: "optimize-placement-pp32", Iterations: 178, NsPerOp: 5729976.926966292, AllocsPerOp: 349, BytesPerOp: 24666}},
	{Tag: "pr5", entry: entry{Name: "ga-generation", Iterations: 4077, NsPerOp: 17063.80866752514, AllocsPerOp: 81, BytesPerOp: 10123}},
}

// benchTarget is the wall-clock budget of one measured run. The iteration
// count is derived from a single warmup run, clamped to [minIters, maxIters].
const (
	benchTarget = time.Second
	minIters    = 5
	maxIters    = 1 << 20
)

// benchReps is the repetition count of every timed loop (the -reps flag):
// each benchmark runs benchReps full measurement loops and records the
// fastest one. Min-of-N is the standard noise estimator on shared machines —
// interference only ever adds time — while the allocation counters are
// deterministic and come from the first repetition.
var benchReps = 3

// run measures fn with -benchmem semantics: forced GC, warmup, then
// benchReps timed loops with Mallocs/HeapAlloc deltas, keeping the fastest.
// (The in-process testing.Benchmark harness inflates wall time on
// cgroup-limited machines, so the measurement loop is explicit — the
// numbers agree with `go test -bench`.)
func run(name string, fn func()) entry {
	runtime.GC()
	warm := time.Now()
	fn()
	iters := int(benchTarget / (time.Since(warm) + 1))
	if iters < minIters {
		iters = minIters
	}
	if iters > maxIters {
		iters = maxIters
	}
	var e entry
	var ms runtime.MemStats
	for rep := 0; rep < benchReps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs0, bytes0 := ms.Mallocs, ms.TotalAlloc
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		if rep == 0 {
			e = entry{
				Name:        name,
				Iterations:  iters,
				NsPerOp:     ns,
				AllocsPerOp: int64((ms.Mallocs - mallocs0) / uint64(iters)),
				BytesPerOp:  int64((ms.TotalAlloc - bytes0) / uint64(iters)),
			}
		} else if ns < e.NsPerOp {
			e.NsPerOp = ns
		}
	}
	fmt.Printf("%-32s %12.0f ns/op %10d allocs/op %12d B/op   (%d iters, best of %d)\n",
		name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, iters, benchReps)
	return e
}

// burst fires jobs concurrently through the typed client, waits for every
// terminal state, and reports the wall time plus the dedup observed in the
// endpoint's stats — one driver for the direct-daemon and routed benchmarks,
// so both burst families measure identically. distinct jobs vary the seed so
// each is a separate fingerprint; identical jobs coalesce.
func burst(name string, c *client.Client, shards, jobs int, distinct bool) serviceEntry {
	ctx := context.Background()
	start := time.Now()
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	var submitErr error
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.Request{Model: "Llama2-30B", Config: "config3", Seq: 2048, Seed: 7}
			if distinct {
				req.Seed = int64(100 + i)
			}
			j, err := c.Submit(ctx, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				submitErr = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	if submitErr != nil {
		fmt.Fprintln(os.Stderr, "bench:", submitErr)
		os.Exit(1)
	}
	for _, id := range ids {
		if _, err := c.Wait(ctx, id); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)
	// Against a router this reads the flattened fleet aggregate, so the
	// plain client reads fleet-wide dedup the same way it reads one daemon's.
	st, err := c.Stats(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	e := serviceEntry{
		Name:        name,
		Shards:      shards,
		Jobs:        jobs,
		Coalesced:   st.JobsCoalesced,
		DedupRate:   st.DedupRate(),
		WallSeconds: wall.Seconds(),
		JobsPerSec:  float64(jobs) / wall.Seconds(),
	}
	suffix := fmt.Sprintf("(%d jobs)", jobs)
	if shards > 0 {
		suffix = fmt.Sprintf("(%d jobs, %d shards)", jobs, shards)
	}
	fmt.Printf("%-32s %12.2f jobs/s %9.0f%% dedup %12.3f s wall   %s\n",
		name, e.JobsPerSec, e.DedupRate*100, e.WallSeconds, suffix)
	return e
}

// serviceThroughput bursts against one in-process watosd behind a real HTTP
// listener. The shared predictor keeps cache keys stable across bursts, so
// the second burst genuinely runs over the caches the first one warmed.
func serviceThroughput(name string, jobs int, distinct bool, pred predictor.Predictor) serviceEntry {
	srv := service.NewServer(service.Options{EvalWorkers: 1, JobWorkers: 2, Backlog: jobs + 1}, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	return burst(name, c, 0, jobs, distinct)
}

// routedFleet stands up n in-process watosd shards behind a probed shard
// map and a router listener, returning a client bound to the router.
// resultCache > 0 enables the router's completed-result cache at that
// capacity (the throughput benchmarks keep it off so every burst pays for
// real routing).
func routedFleet(n int, pred predictor.Predictor, resultCache int) (*client.Client, func()) {
	var shards []*service.Server
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < n; i++ {
		s := service.NewServer(service.Options{EvalWorkers: 1, JobWorkers: 2, Backlog: 64}, pred)
		ts := httptest.NewServer(s.Handler())
		shards = append(shards, s)
		servers = append(servers, ts)
		addrs = append(addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	m := shard.NewMap(addrs, shard.Options{})
	m.Probe(context.Background())
	r := shard.NewRouter(m)
	r.Cache = shard.NewResultCache(resultCache)
	router := httptest.NewServer(r.Handler())
	c := client.New(router.URL)
	c.PollInterval = time.Millisecond
	cleanup := func() {
		router.Close()
		m.Close()
		for i := range shards {
			servers[i].Close()
			shards[i].Close()
		}
	}
	return c, cleanup
}

// routerThroughput fires a burst of jobs through the routing front-end over
// an n-shard fleet and reports sustained jobs/sec plus the fleet-wide dedup
// rate (the routed-dedup hit rate: identical jobs only coalesce because
// stable hashing sends them to one shard's singleflight).
func routerThroughput(name string, shards, jobs int, distinct bool, pred predictor.Predictor) serviceEntry {
	c, cleanup := routedFleet(shards, pred, 0)
	defer cleanup()
	return burst(name, c, shards, jobs, distinct)
}

// routerChaosBurst measures fleet resilience under a mid-burst crash: a
// distinct burst is submitted through the replicated router, then one
// shard's listener and state are torn down — the in-process equivalent of
// SIGKILL, aborting its connections and losing its in-memory jobs. Waits on
// jobs that died with the shard fail fast (the router has excluded it
// in-band), and each lost job is re-dispatched through the router, which now
// routes its fingerprint to a surviving replica. Reported: the completion
// rate with re-dispatches included (1 = the fleet lost nothing for good),
// the recovered-job count, and the mean failover latency — loss detected to
// recomputed result in hand on a survivor.
func routerChaosBurst(name string, nShards, jobs int, pred predictor.Predictor) serviceEntry {
	var shards []*service.Server
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < nShards; i++ {
		s := service.NewServer(service.Options{EvalWorkers: 1, JobWorkers: 2, Backlog: 64}, pred)
		ts := httptest.NewServer(s.Handler())
		shards = append(shards, s)
		servers = append(servers, ts)
		addrs = append(addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	m := shard.NewMap(addrs, shard.Options{})
	m.Probe(context.Background())
	router := httptest.NewServer(shard.NewRouter(m).Handler())
	defer func() {
		router.Close()
		m.Close()
		for i := range shards {
			servers[i].Close()
			shards[i].Close()
		}
	}()
	c := client.New(router.URL)
	c.PollInterval = time.Millisecond

	ctx := context.Background()
	start := time.Now()
	ids := make([]string, jobs)
	reqs := make([]service.Request, jobs)
	var wg sync.WaitGroup
	var submitErr error
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs[i] = service.Request{Model: "Llama2-30B", Config: "config3", Seq: 2048, Seed: int64(100 + i)}
			j, err := c.Submit(ctx, reqs[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				submitErr = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	if submitErr != nil {
		fmt.Fprintln(os.Stderr, "bench:", submitErr)
		os.Exit(1)
	}

	// The whole burst is accepted and mostly still queued (2 workers per
	// shard): kill shard 0 now, at the worst moment.
	servers[0].CloseClientConnections()
	servers[0].Close()
	shards[0].Close()

	var completed, recovered int
	var failoverNs time.Duration
	for i, id := range ids {
		if _, err := c.Wait(ctx, id); err == nil {
			completed++
			continue
		}
		t0 := time.Now()
		j, err := c.Run(ctx, reqs[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if j.State != service.StateDone {
			fmt.Fprintf(os.Stderr, "bench: recovered job %s state = %s, want done\n", j.ID, j.State)
			os.Exit(1)
		}
		failoverNs += time.Since(t0)
		recovered++
		completed++
	}
	wall := time.Since(start)
	e := serviceEntry{
		Name:           name,
		Shards:         nShards,
		Jobs:           jobs,
		WallSeconds:    wall.Seconds(),
		JobsPerSec:     float64(completed) / wall.Seconds(),
		CompletionRate: float64(completed) / float64(jobs),
	}
	if recovered > 0 {
		e.RecoveredJobs = recovered
		e.FailoverMs = float64(failoverNs.Milliseconds()) / float64(recovered)
	}
	fmt.Printf("%-32s %12.2f jobs/s %8.0f%% done %12.3f s wall   (%d recovered, %.1f ms mean failover)\n",
		name, e.JobsPerSec, e.CompletionRate*100, e.WallSeconds, recovered, e.FailoverMs)
	return e
}

// routerSweep scatter-gathers one Table II sweep through the router over an
// n-shard fleet (4 per-architecture parts fanned out by fingerprint, async
// handle + polled gather — the only sweep path since the async subsystem).
func routerSweep(name string, shards int, pred predictor.Predictor) serviceEntry {
	c, cleanup := routedFleet(shards, pred, 0)
	defer cleanup()
	start := time.Now()
	sw, err := c.Sweep(context.Background(), service.Request{Model: "Llama2-30B", Seq: 2048, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	e := serviceEntry{
		Name:        name,
		Shards:      shards,
		Jobs:        len(sw.Jobs),
		WallSeconds: wall.Seconds(),
		JobsPerSec:  float64(len(sw.Jobs)) / wall.Seconds(),
	}
	fmt.Printf("%-32s %12.2f parts/s %9s %12.3f s wall   (%d parts, %d shards)\n",
		name, e.JobsPerSec, "", e.WallSeconds, e.Jobs, shards)
	return e
}

// asyncSweepRows measures the async handle's incremental payoff over an
// n-shard fleet: time to the FIRST consumable per-architecture row versus
// time to the fully merged record, in one scattered sweep. The gap is what
// a synchronous caller used to spend staring at a blocked request.
func asyncSweepRows(shards int, pred predictor.Predictor) (first, merged serviceEntry) {
	c, cleanup := routedFleet(shards, pred, 0)
	defer cleanup()
	ctx := context.Background()
	start := time.Now()
	st, err := c.StartSweep(ctx, service.Request{Model: "Llama2-30B", Seq: 2048, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	var firstRow time.Duration
	st, err = c.WaitSweep(ctx, st.ID, func(leg service.SweepLeg) {
		if firstRow == 0 {
			firstRow = time.Since(start)
		}
	})
	if err != nil || st.State != service.StateDone {
		fmt.Fprintf(os.Stderr, "bench: async sweep: %v (%s %s)\n", err, st.State, st.Error)
		os.Exit(1)
	}
	wall := time.Since(start)
	name := fmt.Sprintf("router-%dshard-async-sweep", shards)
	first = serviceEntry{
		Name: name + "-first-row", Shards: shards, Jobs: 1,
		WallSeconds: firstRow.Seconds(), JobsPerSec: 1 / firstRow.Seconds(),
	}
	merged = serviceEntry{
		Name: name + "-merged", Shards: shards, Jobs: st.Total,
		WallSeconds: wall.Seconds(), JobsPerSec: float64(st.Total) / wall.Seconds(),
	}
	fmt.Printf("%-32s %12.3f s to first row %7.3f s to merge   (%d parts, %d shards)\n",
		name, first.WallSeconds, merged.WallSeconds, st.Total, shards)
	return first, merged
}

// priorityLatency measures one job's submit-to-done latency on a
// single-job-worker daemon whose queue holds a bulk async sweep backlog
// (4 distinct Table II sweeps = 16 queued sweep-leg jobs). priority "" is
// the interactive default — the job overtakes the backlog; "background"
// waits out every leg. The pair quantifies what priority dispatch buys an
// interactive caller under bulk load.
func priorityLatency(name, priority string, pred predictor.Predictor) serviceEntry {
	srv := service.NewServer(service.Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 64}, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	ctx := context.Background()

	for seed := int64(1); seed <= 4; seed++ {
		if _, err := c.StartSweep(ctx, service.Request{Model: "Llama2-30B", Seq: 2048, Seed: seed}); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	start := time.Now()
	j, err := c.Run(ctx, service.Request{
		Model: "Llama2-30B", Config: "config3", Seq: 2048, Seed: 99, Priority: priority,
	})
	if err != nil || j.State != service.StateDone {
		fmt.Fprintf(os.Stderr, "bench: %s: %v (%s)\n", name, err, j.State)
		os.Exit(1)
	}
	wall := time.Since(start)
	e := serviceEntry{
		Name: name, Jobs: 1,
		WallSeconds: wall.Seconds(), JobsPerSec: 1 / wall.Seconds(),
	}
	fmt.Printf("%-32s %12.1f ms latency %22s (16 sweep legs queued)\n",
		name, wall.Seconds()*1e3, "")
	return e
}

// cacheRepeatBurst measures the completed-result cache: a distinct burst is
// run and polled to completion (the polls land every record in the router
// cache), then the identical burst repeats — every job must be answered
// terminally at the router, without one submission crossing the fleet. The
// recorded entry is the repeat burst.
func cacheRepeatBurst(name string, shards, jobs int, pred predictor.Predictor) serviceEntry {
	c, cleanup := routedFleet(shards, pred, 4096)
	defer cleanup()
	ctx := context.Background()
	reqs := make([]service.Request, jobs)
	for i := range reqs {
		reqs[i] = service.Request{Model: "Llama2-30B", Config: "config3", Seq: 2048, Seed: int64(100 + i)}
		if _, err := c.Run(ctx, reqs[i]); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	start := time.Now()
	for i := range reqs {
		j, err := c.Run(ctx, reqs[i])
		if err != nil || !strings.HasPrefix(j.ID, "cache/") {
			fmt.Fprintf(os.Stderr, "bench: repeat %d not cache-served: %v (job %s)\n", i, err, j.ID)
			os.Exit(1)
		}
	}
	wall := time.Since(start)
	e := serviceEntry{
		Name: name, Shards: shards, Jobs: jobs,
		WallSeconds: wall.Seconds(), JobsPerSec: float64(jobs) / wall.Seconds(),
	}
	fmt.Printf("%-32s %12.2f jobs/s %9s %12.3f s wall   (%d repeats, all cache-served)\n",
		name, e.JobsPerSec, "", e.WallSeconds, jobs)
	return e
}

// saturationBurst drives one single-worker daemon at a sustained ~2x+
// offered load — rounds of distinct full-sweep GA jobs, bulk background
// legs plus an interactive pair per round — and reports goodput (the
// fraction of OFFERED work that completed within its latency target) and
// the interactive p95 of what completed. With protect=true the daemon
// sheds over-budget background work at admission (429) and every request
// carries its target as a hard deadline, so hopeless jobs fail fast and
// the worker only burns time on work that can still be good; with
// protect=false everything is admitted and runs to completion, so the
// queue grows without bound and late jobs drag both metrics down. The
// pair is the overload-protection acceptance measurement: protection must
// win on goodput and on interactive p95.
func saturationBurst(name string, protect bool, pred predictor.Predictor) serviceEntry {
	opts := service.Options{EvalWorkers: 1, JobWorkers: 1, Backlog: 256}
	if protect {
		opts.ClassBudgets[pool.Background] = 2
	}
	srv := service.NewServer(opts, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	ctx := context.Background()

	const (
		rounds      = 6
		bgPerRound  = 3
		intPerRound = 2
		roundGap    = 300 * time.Millisecond
		bgTarget    = 2500 * time.Millisecond
		intTarget   = 1200 * time.Millisecond
	)
	type outcome struct {
		interactive bool
		done        bool
		shed        bool
		expired     bool
		latency     time.Duration
		target      time.Duration
	}
	offered := rounds * (bgPerRound + intPerRound)
	outcomes := make([]outcome, offered)
	var wg sync.WaitGroup
	start := time.Now()
	idx := 0
	launch := func(interactive bool) {
		o := &outcomes[idx]
		seed := int64(idx)
		idx++
		o.interactive = interactive
		o.target = bgTarget
		req := service.Request{
			UseGA: true, Batch: 64 + int(seed), Seed: seed, Priority: "background",
		}
		if interactive {
			o.target = intTarget
			req.Priority = "interactive"
		}
		if protect {
			req.DeadlineMS = o.target.Milliseconds()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			j, err := c.Run(ctx, req)
			o.latency = time.Since(t0)
			var se *client.StatusError
			switch {
			case err == nil && j.State == service.StateDone:
				o.done = true
			case err == nil && j.State == service.StateExpired:
				o.expired = true
			case errors.As(err, &se) && se.Code == 429:
				o.shed = true
			case err != nil:
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < bgPerRound; i++ {
			launch(false)
		}
		for i := 0; i < intPerRound; i++ {
			launch(true)
		}
		time.Sleep(roundGap)
	}
	wg.Wait()
	wall := time.Since(start)

	var good, shed, expired int
	var intLat []time.Duration
	for _, o := range outcomes {
		if o.done && o.latency <= o.target {
			good++
		}
		if o.shed {
			shed++
		}
		if o.expired {
			expired++
		}
		if o.interactive && o.done {
			intLat = append(intLat, o.latency)
		}
	}
	e := serviceEntry{
		Name: name, Jobs: offered,
		WallSeconds: wall.Seconds(),
		JobsPerSec:  float64(good) / wall.Seconds(),
		GoodputRate: float64(good) / float64(offered),
		ShedJobs:    shed,
		ExpiredJobs: expired,
	}
	if len(intLat) > 0 {
		sort.Slice(intLat, func(a, b int) bool { return intLat[a] < intLat[b] })
		p95 := intLat[(len(intLat)*95+99)/100-1]
		e.InteractiveP95Ms = float64(p95.Nanoseconds()) / 1e6
	}
	fmt.Printf("%-32s %11.0f%% goodput %8.0f ms int-p95 %10.3f s wall   (%d offered, %d shed, %d expired)\n",
		name, e.GoodputRate*100, e.InteractiveP95Ms, e.WallSeconds, offered, shed, expired)
	return e
}

// sweepTrail is the demand trajectory of the prefetch-replay pair: a client
// stepping through adjacent TP points of a fixed-config sweep at two batch
// sizes — exactly the spatial locality the neighbor predictor mines (each
// step's successor is the step's own TP-doubling neighbor).
func sweepTrail() []service.Request {
	var trail []service.Request
	for _, batch := range []int{64, 128} {
		for _, tp := range []int{1, 2, 4} {
			trail = append(trail, service.Request{
				Model: "Llama2-30B", Config: "config3", Seq: 2048, Batch: batch, FixedTP: tp,
			})
		}
	}
	return trail
}

// recordTrail drives the sweep trajectory against a throwaway recorder
// daemon and pulls it back over GET /v1/trace, rebuilding the demand
// requests from the traced coordinates — the replay below runs off the
// recorded trace, not the generator, so the trace endpoint itself is under
// test.
func recordTrail(pred predictor.Predictor, fail func(error)) []service.Request {
	srv := service.NewServer(service.Options{EvalWorkers: 2, JobWorkers: 1, Backlog: 64}, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	ctx := context.Background()
	for _, req := range sweepTrail() {
		j, err := c.Run(ctx, req)
		if err == nil && j.State != service.StateDone {
			err = fmt.Errorf("trail job %s: %s", j.ID, j.State)
		}
		fail(err)
	}
	resp, err := http.Get(ts.URL + "/v1/trace")
	fail(err)
	defer resp.Body.Close()
	var info service.TraceInfo
	fail(json.NewDecoder(resp.Body).Decode(&info))
	if len(info.Entries) != len(sweepTrail()) {
		fail(fmt.Errorf("trace recorded %d entries, want %d", len(info.Entries), len(sweepTrail())))
	}
	trail := make([]service.Request, len(info.Entries))
	for i, e := range info.Entries {
		p := e.Req
		trail[i] = service.Request{
			Model: p.Model, Config: p.Config, Seq: p.Seq, Batch: p.Batch,
			FixedTP: p.TP, FixedPP: p.PP, UseGA: p.GA,
		}
	}
	return trail
}

// prefetchReplay replays the recorded trajectory against a fresh
// single-worker daemon, pausing after each demand step until the daemon is
// fully idle — the window the speculative lane fills. With prefetchOn the
// daemon predicts each step's sweep neighbors and pre-evaluates the best
// one into the shared caches, so the next step arrives warm; off is the
// demand-only reference. Reported per variant: warm-hit rate (the
// acceptance metric), mean demand latency, and the prefetch counters.
func prefetchReplay(name string, prefetchOn bool, trail []service.Request, pred predictor.Predictor) serviceEntry {
	srv := service.NewServer(service.Options{
		EvalWorkers: 2, JobWorkers: 1, Backlog: 64,
		Prefetch: prefetchOn, PrefetchFanout: 1,
	}, pred)
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	c := client.New(ts.URL)
	c.PollInterval = time.Millisecond
	ctx := context.Background()

	// Wait for queue and workers to go fully idle — queued and in-flight
	// speculation included — so every step's prefetch completes before the
	// next demand arrival, and the off-variant measures the same cadence.
	// Speculation launches on its own goroutine after the demand job
	// completes, so idle must hold stably, not just once — a single
	// idle observation can land before the prediction is even submitted.
	idle := func() {
		deadline := time.Now().Add(30 * time.Second)
		stable := 0
		for time.Now().Before(deadline) {
			if st := srv.Stats(); st.QueueDepth == 0 && st.JobsInFlight == 0 {
				if stable++; stable >= 10 {
					return
				}
			} else {
				stable = 0
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	start := time.Now()
	var demand time.Duration
	for _, req := range trail {
		t0 := time.Now()
		j, err := c.Run(ctx, req)
		if err != nil || j.State != service.StateDone {
			fmt.Fprintf(os.Stderr, "bench: %s: %v (%s)\n", name, err, j.State)
			os.Exit(1)
		}
		demand += time.Since(t0)
		idle()
	}
	wall := time.Since(start)
	st := srv.Stats()
	e := serviceEntry{
		Name: name, Jobs: len(trail),
		WallSeconds:    wall.Seconds(),
		JobsPerSec:     float64(len(trail)) / wall.Seconds(),
		WarmHitRate:    float64(st.HitsDemand+st.HitsPrefetch) / float64(st.JobsSubmitted),
		MeanLatencyMs:  demand.Seconds() * 1e3 / float64(len(trail)),
		PrefetchIssued: int(st.PrefetchIssued),
		PrefetchUseful: int(st.PrefetchUseful),
	}
	fmt.Printf("%-32s %11.0f%% warm-hit %9.1f ms mean %10.3f s wall   (%d steps, %d prefetched, %d useful)\n",
		name, e.WarmHitRate*100, e.MeanLatencyMs, e.WallSeconds, len(trail), e.PrefetchIssued, e.PrefetchUseful)
	return e
}

// gaGenerationBench runs a fixed-generation GA optimize and reports
// per-generation cost (total metrics divided by the generation count).
// placementBatch 0 is the batched default (one ScorerBatch pass per chunk
// of one-transposition genomes); 1 forces the scalar per-leg evaluation.
func gaGenerationBench(name string, placementBatch int, fail func(error)) entry {
	const gens = 16
	prob, seed, err := benchutil.GAProblem()
	fail(err)
	var iter int64
	e := run(name, func() {
		iter++
		_, err := ga.Optimize(prob, seed, ga.Options{
			Population: 24, Generations: gens, Omega: 0.5, Seed: iter, Workers: 1,
			PlacementBatch: placementBatch,
		})
		fail(err)
	})
	e.NsPerOp /= gens
	e.AllocsPerOp /= gens
	e.BytesPerOp /= gens
	return e
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	reps := flag.Int("reps", benchReps, "timed-loop repetitions per benchmark (best is recorded)")
	flag.Parse()
	benchReps = *reps
	if benchReps < 1 {
		benchReps = 1
	}

	pred := predictor.NewLookupTable(predictor.TileLevel{})
	work := model.Workload{GlobalBatch: 64, MicroBatch: 1, SeqLen: 2048}

	rep := report{
		Tag:       "pr10",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Baselines: append(append([]taggedEntry{}, priorBaselines...), pr5Placement...),
		BaselineNote: "baselines measured on the respective PR trees on the reference dev machine; " +
			"speedup_ns_vs is only meaningful on comparable hardware — " +
			"speedup_allocs_vs is machine-independent",
		AcceptanceBench: "search-sequential-nocache",
		SpeedupNs:       map[string]float64{},
		SpeedupAllocs:   map[string]float64{},
	}

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	// Acceptance benchmark: single-worker search with memoization disabled —
	// the strictly sequential, cache-cold configuration of the seed.
	seq := run("search-sequential-nocache", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 1, DisableCache: true})
		fail(err)
	})
	rep.Benchmarks = append(rep.Benchmarks, seq)
	for _, b := range priorBaselines {
		rep.SpeedupNs[b.Tag] = b.NsPerOp / seq.NsPerOp
		rep.SpeedupAllocs[b.Tag] = float64(b.AllocsPerOp) / float64(seq.AllocsPerOp)
	}

	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Benchmarks = append(rep.Benchmarks, run("search-parallel-cached", func() {
		_, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
			sched.Options{Workers: 0})
		fail(err)
	}))

	// Evaluator micro-benchmarks on the best fixed strategy.
	res, err := sched.Search(hw.Config3(), model.Llama2_30B(), work, pred,
		sched.Options{FixedTP: 4, FixedPP: 7})
	fail(err)
	cfg := engine.Config{
		Wafer: hw.Config3(), Spec: model.Llama2_30B(), Workload: work,
		TP: res.Best.TP, PP: res.Best.PP, Collective: res.Best.Collective, Predictor: pred,
	}
	m := mesh.New(hw.Config3())
	strat := res.Best.Strategy

	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-cold", func() {
		collective.ResetPlanCache()
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("evaluate-warm", func() {
		_, err := sim.Evaluate(cfg, m, strat)
		fail(err)
	}))

	group := collective.Rectangle(0, 0, 4, 2)
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-warm", func() {
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))
	rep.Benchmarks = append(rep.Benchmarks, run("allreduce-plan-cold", func() {
		collective.ResetPlanCache()
		_, err := collective.AllReduce(m, group, 1e9, collective.BiRing)
		fail(err)
	}))

	// Annealer iteration: incremental Scorer vs the PR3-era full Eq 2
	// re-evaluation, measured in the same run on the scale wafer (12×12
	// dies, pp=128 single-die stages, 32 Mem_pairs) and at Config3 scale
	// (pp=32, 8 pairs). The full-re-evaluation numbers are recorded as
	// pr3-full-reeval baselines so the speedup travels with the file.
	for _, cfg := range []struct {
		name   string
		mesh   *mesh.Mesh
		pp, np int
	}{
		{"anneal-swap", benchutil.ScaleWafer(), 128, 32},
		{"anneal-swap-pp32", mesh.New(hw.Config3()), 32, 8},
	} {
		anchors, wl, err := benchutil.AnnealSubstrate(cfg.mesh, 1, cfg.pp, cfg.np)
		fail(err)
		sc := placement.NewScorer(cfg.mesh, anchors, wl)
		swap := benchutil.AnnealSwapCycle(sc, cfg.pp, rand.New(rand.NewSource(1)))
		// Warm the inverted link index to steady-state capacities, then
		// enforce the zero-allocation contract of the inner loop.
		for i := 0; i < 20000; i++ {
			swap()
		}
		if allocs := testing.AllocsPerRun(5000, swap); allocs != 0 {
			fail(fmt.Errorf("%s: annealer inner loop allocates %.2f objects/op, want 0", cfg.name, allocs))
		}
		inc := run(cfg.name, swap)
		rep.Benchmarks = append(rep.Benchmarks, inc)

		refAnchors, refWL, err := benchutil.AnnealSubstrate(cfg.mesh, 1, cfg.pp, cfg.np)
		fail(err)
		full := run(cfg.name+"-full-reeval",
			benchutil.AnnealSwapCycleFull(cfg.mesh, refAnchors, refWL, cfg.mesh.NewLinkSet(), cfg.pp, rand.New(rand.NewSource(1))))
		full.Name = cfg.name
		rep.Baselines = append(rep.Baselines, taggedEntry{Tag: "pr3-full-reeval", entry: full})
		rep.SpeedupNs["pr3-full-reeval("+cfg.name+")"] = full.NsPerOp / inc.NsPerOp

		// Batched candidate evaluation on the same substrate and Scorer:
		// one speculative K-wide pass per cycle, recorded per candidate so
		// the numbers sit next to the scalar per-iteration cost. The batch
		// inner loop carries the same zero-allocation contract.
		for _, k := range []int{8, 32} {
			batch := placement.NewScorerBatch(sc, k)
			bcycle := benchutil.AnnealBatchCycle(batch, cfg.pp, k, rand.New(rand.NewSource(1)))
			for i := 0; i < 2000; i++ {
				bcycle()
			}
			if allocs := testing.AllocsPerRun(2000, bcycle); allocs != 0 {
				fail(fmt.Errorf("%s-batch%d: batch inner loop allocates %.2f objects/op, want 0", cfg.name, k, allocs))
			}
			be := run(fmt.Sprintf("%s-batch%d", cfg.name, k), bcycle)
			be.NsPerOp /= float64(k)
			be.BytesPerOp /= int64(k)
			rep.Benchmarks = append(rep.Benchmarks, be)
			rep.SpeedupNs[fmt.Sprintf("scalar(%s)/batch%d", cfg.name, k)] = inc.NsPerOp / be.NsPerOp
		}
	}

	// End-to-end §IV-C-1 annealing searches (200·pp iterations each), with
	// the speculative batched evaluator (the Optimize default). The
	// pp32-scalar entry forces window 1 — the scalar reference loop over the
	// identical trajectory — so the batching speedup is also measured
	// in-run, on the same machine, next to the recorded pr5 baseline.
	for _, cfg := range []struct {
		name       string
		scale      bool
		tp, pp, np int
		window     int
	}{
		{"optimize-placement-pp8", false, 7, 8, 2, placement.DefaultSpecWindow},
		{"optimize-placement-pp32", false, 1, 32, 8, placement.DefaultSpecWindow},
		{"optimize-placement-pp32-scalar", false, 1, 32, 8, 1},
		{"optimize-placement-pp128", true, 1, 128, 32, placement.DefaultSpecWindow},
	} {
		om := mesh.New(hw.Config3())
		if cfg.scale {
			om = benchutil.ScaleWafer()
		}
		// The substrate's pairs and volumes are stage-indexed, so the same
		// workload drives any (tp, pp) partition of the mesh.
		_, wl, err := benchutil.AnnealSubstrate(om, 1, cfg.pp, cfg.np)
		fail(err)
		var seed int64
		window := cfg.window
		rep.Benchmarks = append(rep.Benchmarks, run(cfg.name, func() {
			seed++
			_, err := placement.OptimizeWindow(om, cfg.tp, cfg.pp, wl, rand.New(rand.NewSource(seed)), window)
			fail(err)
		}))
	}
	speedupPair := func(key, num, den string) {
		var n, d float64
		for _, b := range rep.Benchmarks {
			switch b.Name {
			case num:
				n = b.NsPerOp
			case den:
				d = b.NsPerOp
			}
		}
		if n > 0 && d > 0 {
			rep.SpeedupNs[key] = n / d
		}
	}
	speedupPair("scalar(optimize-placement-pp32)/speculative", "optimize-placement-pp32-scalar", "optimize-placement-pp32")

	rep.Benchmarks = append(rep.Benchmarks, gaGenerationBench("ga-generation", 0, fail))
	rep.Benchmarks = append(rep.Benchmarks, gaGenerationBench("ga-generation-scalar", 1, fail))
	speedupPair("scalar(ga-generation)/batched", "ga-generation-scalar", "ga-generation")

	// Per-benchmark improvement over the PR 5 tree, recorded against the
	// carried-forward baselines.
	for _, base := range pr5Placement {
		for _, b := range rep.Benchmarks {
			if b.Name == base.Name {
				rep.SpeedupNs["pr5("+base.Name+")"] = base.NsPerOp / b.NsPerOp
			}
		}
	}

	// Service throughput: concurrent identical jobs coalesce onto one
	// execution (the dedup path), concurrent distinct jobs stream through
	// the bounded queue over warm caches (the resident-daemon path). Cold
	// caches first so the identical burst includes one real execution;
	// both bursts share the process predictor so their cache keys agree.
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, serviceThroughput("service-identical-burst", 32, false, pred))
	rep.Service = append(rep.Service, serviceThroughput("service-distinct-burst", 32, true, pred))

	// Sharded tier: the distinct burst through the routing front-end over 1
	// vs 2 shards (scaling: two daemons drain two bounded queues), the
	// identical burst through the router (routed-dedup: stable hashing keeps
	// every duplicate on one shard's singleflight), and scatter-gathered
	// Table II sweeps. Caches reset before each run so every burst pays its
	// own cold start.
	for _, cfg := range []struct {
		name     string
		shards   int
		distinct bool
	}{
		{"router-1shard-distinct-burst", 1, true},
		{"router-2shard-distinct-burst", 2, true},
		{"router-2shard-identical-burst", 2, false},
	} {
		search.DefaultCache().Reset()
		sched.ResetCache()
		rep.Service = append(rep.Service, routerThroughput(cfg.name, cfg.shards, 32, cfg.distinct, pred))
	}
	for _, shards := range []int{1, 2} {
		search.DefaultCache().Reset()
		sched.ResetCache()
		rep.Service = append(rep.Service, routerSweep(fmt.Sprintf("router-%dshard-sweep", shards), shards, pred))
	}

	// Async job subsystem: incremental per-architecture rows from a sweep
	// handle (time-to-first-row vs full merge), interactive-vs-background
	// latency under a bulk sweep backlog (priority dispatch), and the
	// repeat burst answered entirely from the router's completed-result
	// cache.
	search.DefaultCache().Reset()
	sched.ResetCache()
	first, mergedE := asyncSweepRows(2, pred)
	rep.Service = append(rep.Service, first, mergedE)
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, priorityLatency("interactive-under-bulk-sweep", "", pred))
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, priorityLatency("background-under-bulk-sweep", "background", pred))
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, cacheRepeatBurst("router-cache-repeat-burst", 2, 32, pred))

	// Fleet resilience: the distinct burst again, but one of the three
	// replicated shards is killed while the burst is queued.
	search.DefaultCache().Reset()
	sched.ResetCache()
	rep.Service = append(rep.Service, routerChaosBurst("router-3shard-kill-mid-burst", 3, 32, pred))

	// Overload protection: the same 2x+ saturation pattern with admission
	// control + deadlines on versus everything admitted. Protection must
	// win on goodput AND on interactive p95, or the run fails — this is the
	// PR's acceptance measurement, not an informational number.
	search.DefaultCache().Reset()
	sched.ResetCache()
	protected := saturationBurst("saturation-2x-shedding", true, pred)
	search.DefaultCache().Reset()
	sched.ResetCache()
	unprotected := saturationBurst("saturation-2x-no-shedding", false, pred)
	rep.Service = append(rep.Service, protected, unprotected)
	if protected.GoodputRate <= unprotected.GoodputRate {
		fail(fmt.Errorf("shedding lost on goodput: %.2f protected vs %.2f unprotected",
			protected.GoodputRate, unprotected.GoodputRate))
	}
	if protected.InteractiveP95Ms >= unprotected.InteractiveP95Ms {
		fail(fmt.Errorf("shedding lost on interactive p95: %.0f ms protected vs %.0f ms unprotected",
			protected.InteractiveP95Ms, unprotected.InteractiveP95Ms))
	}
	rep.SpeedupNs["goodput(shedding/no-shedding)"] = protected.GoodputRate / unprotected.GoodputRate
	rep.SpeedupNs["interactive-p95(no-shedding/shedding)"] = unprotected.InteractiveP95Ms / protected.InteractiveP95Ms

	// Speculative prefetch: record the sweep trajectory once (and read it
	// back over GET /v1/trace), then replay it against fresh daemons with
	// the idle-capacity prefetch lane on vs off. Prefetch must strictly win
	// the warm-hit rate, or the run fails — the PR's acceptance measurement.
	search.DefaultCache().Reset()
	sched.ResetCache()
	trail := recordTrail(pred, fail)
	search.DefaultCache().Reset()
	sched.ResetCache()
	pfOn := prefetchReplay("prefetch-replay-on", true, trail, pred)
	search.DefaultCache().Reset()
	sched.ResetCache()
	pfOff := prefetchReplay("prefetch-replay-off", false, trail, pred)
	rep.Service = append(rep.Service, pfOn, pfOff)
	if pfOn.WarmHitRate <= pfOff.WarmHitRate {
		fail(fmt.Errorf("prefetch lost on warm-hit rate: %.2f on vs %.2f off",
			pfOn.WarmHitRate, pfOff.WarmHitRate))
	}
	rep.SpeedupNs["mean-latency(no-prefetch/prefetch)"] = pfOff.MeanLatencyMs / pfOn.MeanLatencyMs

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s  (speedup vs pr2 baseline: %.2fx ns/op, %.2fx allocs/op)\n",
		*out, rep.SpeedupNs["pr2"], rep.SpeedupAllocs["pr2"])
}

// Command figures regenerates the tables and figures of the WATOS paper's
// evaluation. With no arguments it runs every experiment; -fig selects one.
//
//	figures            # all experiments
//	figures -fig 16    # overall-performance comparison only
//	figures -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment ID to run (e.g. 1, 5a, 15, table2); empty = all")
	list := flag.Bool("list", false, "list available experiment IDs")
	workers := cliutil.WorkersFlag()
	flag.Parse()
	experiments.Workers = *workers

	reg := experiments.Registry()
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	ids := experiments.IDs()
	if *fig != "" {
		if _, ok := reg[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *fig, strings.Join(ids, " "))
			os.Exit(2)
		}
		ids = []string{*fig}
	}
	failed := 0
	for _, id := range ids {
		t, err := reg[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		t.Fprint(os.Stdout)
	}
	// Figure points share the process-wide caches: repeated (wafer,
	// strategy) configurations across baselines and ablations are explored
	// and simulated once.
	cc := experiments.CandidateCacheStats()
	cs := experiments.CacheStats()
	fmt.Fprintf(os.Stderr, "candidate cache: %d hits / %d misses (%.0f%% hit rate, %d entries)\n",
		cc.Hits, cc.Misses, cc.HitRate()*100, cc.Size)
	fmt.Fprintf(os.Stderr, "eval cache:      %d hits / %d misses (%.0f%% hit rate, %d entries)\n",
		cs.Hits, cs.Misses, cs.HitRate()*100, cs.Size)
	if failed > 0 {
		os.Exit(1)
	}
}

// Command watosd is the resident WATOS evaluation service: a daemon that
// accepts search jobs over an HTTP/JSON API (see internal/service), runs
// them on a bounded job queue, coalesces identical concurrent requests, and
// keeps the process-wide candidate and evaluation caches warm across
// requests — persisting them to a snapshot file so a restarted daemon
// answers previously-seen jobs without re-simulation.
//
//	watosd -addr :8080
//	watosd -addr :8080 -workers 8 -jobs 2 -snapshot /var/lib/watos/cache.snapshot
//	watosd -addr :8081 -seed-from localhost:8080   # join a fleet warm
//	watos -model Llama2-30B -config config3 -remote localhost:8080
//
// Shutdown is graceful: on SIGINT/SIGTERM the daemon flips into draining
// (new submissions get HTTP 503, health goes unhealthy so a routing tier
// stops sending work), stops accepting connections, finishes every job
// already accepted — running and queued — and saves a final snapshot. A
// second signal skips the drain and exits on the bounded path (running jobs
// finish, the queued backlog is dropped).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/search/pool"
	"repro/internal/service"
	"repro/internal/service/client"
)

// parseClassBudgets parses "-class-budget background=8,sweep-leg=32" into the
// per-class backlog caps (indexed by pool.Class; 0 = uncapped). Class names
// are the wire priority names the API accepts.
func parseClassBudgets(s string) ([pool.NumClasses]int, error) {
	var budgets [pool.NumClasses]int
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return budgets, fmt.Errorf("class budget %q: want class=N", kv)
		}
		name = strings.TrimSpace(name)
		cls, known := pool.ParseClass(name)
		if name == "" || !known {
			return budgets, fmt.Errorf("class budget %q: unknown class (want interactive, sweep-leg or background)", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return budgets, fmt.Errorf("class budget %q: bad cap %q", name, val)
		}
		budgets[cls] = n
	}
	return budgets, nil
}

// withInjectedDelay wraps a handler so the first n non-healthz requests stall
// for d before being served — a development fault that makes the data path
// slow while the health probe stays green, exactly the brownout the routing
// tier's latency breaker exists to catch. n <= 0 delays every request.
func withInjectedDelay(h http.Handler, d time.Duration, n int) http.Handler {
	var left atomic.Int64
	unbounded := n <= 0
	left.Store(int64(n))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" && (unbounded || left.Add(-1) >= 0) {
			time.Sleep(d)
		}
		h.ServeHTTP(w, r)
	})
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := cliutil.WorkersFlag()
	jobs := flag.Int("jobs", 1, "number of jobs running concurrently")
	backlog := flag.Int("backlog", 64, "queued-job backlog bound (submissions beyond it get HTTP 503)")
	classBudget := flag.String("class-budget", "", "per-priority-class backlog caps, e.g. background=8,sweep-leg=32,interactive=0 (0 = uncapped; over-budget submissions get HTTP 429 + Retry-After)")
	history := flag.Int("history", 1024, "retained terminal job records (oldest evicted first)")
	historyTTL := flag.Duration("history-ttl", time.Hour, "terminal job records expire after this age; polling them returns HTTP 410 (negative = never)")
	sweepTTL := flag.Duration("sweep-ttl", 15*time.Minute, "terminal async sweep handles expire after this age (negative = never)")
	sweepHistory := flag.Int("sweep-history", 256, "retained async sweep handles (oldest finished evicted first)")
	snapshot := flag.String("snapshot", "", "cache snapshot path: load at startup, save on shutdown and on POST /v1/snapshot")
	seedFrom := flag.String("seed-from", "", "peer watosd address to pull a cache snapshot from at startup (shard warm join; mismatched snapshot versions are discarded)")
	prefetchOn := flag.Bool("prefetch", false, "speculative cache warming: completed demand jobs predict their sweep neighbors and pre-evaluate them through idle capacity")
	prefetchFanout := flag.Int("prefetch-fanout", 3, "speculative evaluations issued per completed demand job (with -prefetch)")
	traceCap := flag.Int("trace-capacity", 0, "request-trace ring entries retained for GET /v1/trace and neighbor prediction (0 = default 256)")
	pprofOn := cliutil.PprofFlag()
	injectDelay := flag.Duration("test-inject-delay", 0, "development fault: stall non-healthz requests by this much (0 = off); pair with -test-inject-first")
	injectFirst := flag.Int("test-inject-first", 0, "development fault: only the first N non-healthz requests stall (0 = all while -test-inject-delay is set)")
	flag.Parse()

	budgets, err := parseClassBudgets(*classBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "watosd: -class-budget:", err)
		os.Exit(2)
	}

	srv := service.NewServer(service.Options{
		EvalWorkers:    *workers,
		JobWorkers:     *jobs,
		Backlog:        *backlog,
		ClassBudgets:   budgets,
		History:        *history,
		HistoryTTL:     *historyTTL,
		SweepTTL:       *sweepTTL,
		SweepHistory:   *sweepHistory,
		SnapshotPath:   *snapshot,
		Prefetch:       *prefetchOn,
		PrefetchFanout: *prefetchFanout,
		TraceCapacity:  *traceCap,
	}, nil)

	if *snapshot != "" {
		switch info, err := srv.LoadSnapshot(); {
		case err == nil:
			log.Printf("warm start: restored %d candidates / %d evaluations from %s (saved %s)",
				info.Candidates, info.Eval, info.Path, info.SavedAt.Format(time.RFC3339))
		case errors.Is(err, service.ErrNoSnapshot):
			log.Printf("cold start: no snapshot at %s yet", *snapshot)
		case errors.Is(err, service.ErrStaleSnapshot):
			log.Printf("cold start: discarding stale snapshot at %s (%v)", *snapshot, err)
		default:
			log.Printf("cold start: snapshot load failed: %v", err)
		}
	}

	// A shard joining a fleet mid-run seeds its caches from a warm peer: one
	// GET /v1/snapshot pull, validated against this daemon's fingerprint
	// scheme and predictor identity (a mismatched peer snapshot is discarded,
	// never aliased). Seeding failures are cold starts, not fatal — the shard
	// still serves correctly, just without the warm-up.
	if *seedFrom != "" {
		func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			rc, err := client.New(*seedFrom).PullSnapshot(ctx)
			if err != nil {
				log.Printf("cold join: snapshot pull from %s failed: %v", *seedFrom, err)
				return
			}
			defer rc.Close()
			switch info, err := srv.RestoreSnapshotFrom(rc); {
			case err == nil:
				log.Printf("warm join: seeded %d candidates / %d evaluations from peer %s",
					info.Candidates, info.Eval, *seedFrom)
			case errors.Is(err, service.ErrStaleSnapshot):
				log.Printf("cold join: discarding peer snapshot from %s (%v)", *seedFrom, err)
			default:
				log.Printf("cold join: peer snapshot from %s unreadable: %v", *seedFrom, err)
			}
		}()
	}

	// A resident daemon must not let slow or idle clients pin connections
	// forever: bound header and body reads and idle keep-alive. Responses
	// can be large (canonical records), so writes stay unbounded — the
	// handler bounds request bodies instead (service.MaxRequestBytes).
	handler := cliutil.WithPprof(srv.Handler(), *pprofOn)
	if *injectDelay > 0 {
		log.Printf("fault injection armed: first %d non-healthz requests stall %v (0 = all)", *injectFirst, *injectDelay)
		handler = withInjectedDelay(handler, *injectDelay, *injectFirst)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("watosd listening on %s (jobs=%d, workers=%d)", *addr, *jobs, *workers)

	select {
	case <-ctx.Done():
		log.Print("shutting down: draining jobs (signal again to skip the drain)")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "watosd:", err)
		os.Exit(1)
	}
	// Refuse new work before the listener goes down, so a submission racing
	// the shutdown gets a clean 503 instead of a reset connection, and
	// re-arm signals: a second SIGTERM/SIGINT falls through to the bounded
	// close instead of being swallowed by the finished NotifyContext.
	srv.BeginDrain()
	stop()
	forced := make(chan os.Signal, 1)
	signal.Notify(forced, os.Interrupt, syscall.SIGTERM)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}

	// Graceful path: finish the accepted backlog too. A second signal while
	// it drains cuts over to the bounded close (running jobs finish, the
	// rest of the backlog is dropped and marked failed).
	closed := make(chan error, 1)
	go func() { closed <- srv.CloseGraceful() }()
	var closeErr error
	select {
	case closeErr = <-closed:
	case <-forced:
		log.Print("second signal: dropping the queued backlog")
		srv.AbortDrain()
		closeErr = <-closed
	}
	if closeErr != nil {
		log.Printf("snapshot save: %v", closeErr)
	} else if *snapshot != "" {
		log.Printf("snapshot saved to %s", *snapshot)
	}
	log.Print("watosd stopped")
}

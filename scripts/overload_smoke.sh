#!/usr/bin/env bash
# Overload smoke: real watosd / watos-router processes under deliberate
# overload and brownout —
#   1. a single-worker daemon under a background burst sheds over-budget
#      submissions with HTTP 429 + Retry-After, an interactive job submitted
#      behind the burst overtakes it and finishes inside its deadline, and a
#      queued background job whose deadline lapses is cancelled without
#      executing (state deadline_exceeded, never failed),
#   2. a slow-but-alive shard (fault-injected request stalls; healthz stays
#      green) trips the router's latency breaker and leaves routing while
#      still probe-healthy, routed work keeps completing byte-identically on
#      the fast shard, and once the stall clears a half-open trial readmits
#      the shard (breaker closed again).
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/watosd" ./cmd/watosd
go build -o "$BIN/watos-router" ./cmd/watos-router
go build -o "$BIN/watos" ./cmd/watos

PORT_D=${PORT_D:-8805}
PORT_A=${PORT_A:-8806}
PORT_B=${PORT_B:-8807}
PORT_R=${PORT_R:-8808}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "endpoint on port $1 never became healthy" >&2
  return 1
}

submit() { # submit <port> <json-body> -> "HTTPCODE RETRY_AFTER BODY"
  curl -s -o "$WORK/submit-body.json" -w '%{http_code} %header{retry-after}' \
    -H 'Content-Type: application/json' -d "$2" "http://127.0.0.1:$1/v1/jobs"
  printf ' '
  cat "$WORK/submit-body.json"
}

echo "== 1. admission control on one overloaded daemon =="
"$BIN/watosd" -addr "127.0.0.1:$PORT_D" -workers 1 -jobs 1 \
  -backlog 16 -class-budget background=3 & PID_D=$!
wait_healthy "$PORT_D"

# Background burst: full Table II GA sweeps on distinct workloads (batch
# varies), so the eval cache cannot shortcut them — each holds the single
# job worker for hundreds of milliseconds. The first runs; the next three
# fill the background budget; the rest must shed with 429 + Retry-After.
SHED=0
EXPIRE_ID=
for i in $(seq 0 7); do
  BODY="{\"ga\":true,\"batch\":$((96 + i)),\"seed\":$i,\"priority\":\"background\""
  if [ "$i" = 1 ]; then
    # This one sits queued behind the running GA job and must expire there.
    BODY="$BODY,\"deadline_ms\":250}"
  else
    BODY="$BODY}"
  fi
  OUT=$(submit "$PORT_D" "$BODY")
  CODE=${OUT%% *}
  case "$CODE" in
    202|200)
      if [ "$i" = 1 ]; then
        EXPIRE_ID=$(python3 -c "import json,sys; print(json.load(open('$WORK/submit-body.json'))['id'])")
      fi
      ;;
    429)
      RA=$(echo "$OUT" | awk '{print $2}')
      if [ -z "$RA" ] || [ "$RA" -lt 1 ]; then
        echo "429 without a usable Retry-After: $OUT" >&2
        exit 1
      fi
      SHED=$((SHED + 1))
      ;;
    *)
      echo "unexpected submit answer: $OUT" >&2
      exit 1
      ;;
  esac
done
if [ "$SHED" -lt 1 ]; then
  echo "background burst of 8 over budget 3 shed nothing" >&2
  exit 1
fi
if [ -z "$EXPIRE_ID" ]; then
  echo "the deadline-carrying background job was not admitted" >&2
  exit 1
fi
echo "background burst: $SHED submissions shed with 429 + Retry-After"

# Interactive overtake: submitted behind the background backlog with a
# deadline, it must finish while background legs are still pending.
START_MS=$(python3 -c 'import time; print(int(time.time() * 1000))')
"$BIN/watos" -model Llama2-30B -config config3 -remote "127.0.0.1:$PORT_D" \
  -deadline 10s -canon > "$WORK/interactive.txt"
ELAPSED_MS=$(python3 -c "import time; print(int(time.time() * 1000) - $START_MS)")
curl -s "http://127.0.0.1:$PORT_D/v1/jobs" | python3 -c "
import sys, json
jobs = json.load(sys.stdin)
pending = [j['id'] for j in jobs if j.get('state') in ('queued', 'running')]
assert pending, 'interactive finished only after the backlog fully drained — overtake unproven'
print('interactive done in ${ELAPSED_MS}ms with', len(pending), 'background jobs still pending')
"

# The expired job: cancelled while queued, reported distinctly from failure.
for _ in $(seq 1 100); do
  STATE=$(curl -s "http://127.0.0.1:$PORT_D/v1/jobs/$EXPIRE_ID" | python3 -c "
import sys, json
print(json.load(sys.stdin).get('state', ''))")
  case "$STATE" in queued|running) sleep 0.1 ;; *) break ;; esac
done
if [ "$STATE" != "deadline_exceeded" ]; then
  echo "stale-deadline job ended as '$STATE', want deadline_exceeded" >&2
  exit 1
fi
echo "queued background job expired as deadline_exceeded (not failed)"

curl -s "http://127.0.0.1:$PORT_D/v1/stats" | python3 -c "
import sys, json
st = json.load(sys.stdin)
assert st['jobs_shed'] >= 1, st
assert st['jobs_expired'] >= 1, st
print('daemon gauges: jobs_shed =', st['jobs_shed'], ' jobs_expired =', st['jobs_expired'])
"
kill "$PID_D" 2>/dev/null || true

echo "== 2. latency breaker on a slow-but-alive shard =="
# Shard B answers healthz instantly but stalls its first 2 data-path
# requests for 1s — the brownout the health probe cannot see.
"$BIN/watosd" -addr "127.0.0.1:$PORT_A" -workers 2 &
"$BIN/watosd" -addr "127.0.0.1:$PORT_B" -workers 2 \
  -test-inject-delay 1s -test-inject-first 2 &
wait_healthy "$PORT_A"
wait_healthy "$PORT_B"

"$BIN/watos-router" -addr "127.0.0.1:$PORT_R" \
  -shards "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" -replicas 2 \
  -breaker-window 4 -breaker-min-samples 2 -breaker-p95 300ms \
  -breaker-cooldown 500ms &
wait_healthy "$PORT_R"

# Each router stats aggregation round-trips every shard, so two calls feed
# shard B's breaker two ~1s samples — past min-samples, p95 over 300ms, and
# the breaker opens while the health probe stays green. The two calls also
# exhaust the injected stall, so the shard is genuinely fast again after.
curl -s "http://127.0.0.1:$PORT_R/v1/stats" >/dev/null
curl -s "http://127.0.0.1:$PORT_R/v1/stats" >/dev/null
curl -s "http://127.0.0.1:$PORT_R/v1/stats" | python3 -c "
import sys, json
st = json.load(sys.stdin)
by_addr = {s['addr']: s for s in st['shards']}
slow, fast = by_addr['127.0.0.1:$PORT_B'], by_addr['127.0.0.1:$PORT_A']
assert slow['healthy'], 'slow shard lost probe health; the breaker was not the excluder'
assert slow['breaker']['state'] == 'open', slow['breaker']
assert slow['breaker']['times_opened'] >= 1, slow['breaker']
assert fast['breaker']['state'] == 'closed', fast['breaker']
p95 = slow['breaker'].get('window_p95_ms', 0)
print(f'slow shard: probe-healthy, breaker open (window p95 {p95:.0f}ms)')
"

# Routed work keeps completing — and byte-identically — while the breaker
# holds the slow shard out of the replica chains.
"$BIN/watos" -model Llama2-30B -config config3 -canon > "$WORK/local.txt"
"$BIN/watos" -model Llama2-30B -config config3 -remote "127.0.0.1:$PORT_R" \
  -deadline 10s -retry-budget 2 -canon > "$WORK/routed.txt"
cmp "$WORK/routed.txt" "$WORK/local.txt"
echo "routed job byte-identical with the slow shard's breaker open"

# Readmission: after the cooldown a submission whose replica chain leads
# with the slow shard claims the half-open trial; the stall is exhausted, the
# trial succeeds fast, and the breaker closes.
sleep 0.6
CLOSED=
for i in $(seq 1 30); do
  curl -s -o /dev/null -H 'Content-Type: application/json' \
    -d "{\"config\":\"config3\",\"seed\":$((100 + i))}" \
    "http://127.0.0.1:$PORT_R/v1/jobs"
  STATE=$(curl -s "http://127.0.0.1:$PORT_R/v1/stats" | python3 -c "
import sys, json
st = json.load(sys.stdin)
print({s['addr']: s for s in st['shards']}['127.0.0.1:$PORT_B']['breaker']['state'])")
  if [ "$STATE" = "closed" ]; then CLOSED=1; break; fi
  sleep 0.1
done
if [ -z "$CLOSED" ]; then
  echo "slow shard's breaker never closed after the stall cleared" >&2
  exit 1
fi
echo "half-open trial readmitted the recovered shard (breaker closed)"

echo "overload-smoke: all assertions passed"

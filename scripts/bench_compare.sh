#!/usr/bin/env bash
# bench_compare.sh — diff two BENCH_*.json perf-trajectory files.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [--threshold PCT] [--report-only]
#
# Prints, per benchmark present in both files, the ns/op and allocs/op
# ratios (old/new — >1.00 is an improvement). Exits non-zero when any
# benchmark regresses by more than the threshold (default 25% ns/op, to
# ride out shared-runner noise) or grows allocs/op beyond a 5%/+2 slack
# (concurrent benchmarks jitter by a few allocs run-to-run), unless
# --report-only is given. Benchmarks present in only one file are listed
# but never fail the gate.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 OLD.json NEW.json [--threshold PCT] [--report-only]" >&2
  exit 2
fi

OLD=$1
NEW=$2
shift 2
THRESHOLD=25
REPORT_ONLY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --threshold) THRESHOLD=$2; shift 2 ;;
    --report-only) REPORT_ONLY=1; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

OLD="$OLD" NEW="$NEW" THRESHOLD="$THRESHOLD" REPORT_ONLY="$REPORT_ONLY" python3 - <<'EOF'
import json, os, sys

old_path, new_path = os.environ["OLD"], os.environ["NEW"]
threshold = float(os.environ["THRESHOLD"])
report_only = os.environ["REPORT_ONLY"] == "1"

def load(path):
    with open(path) as f:
        rep = json.load(f)
    return rep.get("tag", path), {b["name"]: b for b in rep.get("benchmarks", [])}

old_tag, old = load(old_path)
new_tag, new = load(new_path)

print(f"benchmark comparison: {old_tag} -> {new_tag}")
print(f"{'benchmark':<34} {'old ns/op':>14} {'new ns/op':>14} {'ns ratio':>9} {'allocs':>13} {'verdict':>10}")

failures = []
for name in old:
    if name not in new:
        print(f"{name:<34} {old[name]['ns_per_op']:>14.0f} {'(dropped)':>14}")
        continue
    o, n = old[name], new[name]
    ns_ratio = o["ns_per_op"] / n["ns_per_op"] if n["ns_per_op"] else float("inf")
    alloc_str = f"{o['allocs_per_op']} -> {n['allocs_per_op']}"
    verdict = "ok"
    alloc_slack = max(o["allocs_per_op"] * 1.05, o["allocs_per_op"] + 2)
    if n["allocs_per_op"] > alloc_slack:
        verdict = "ALLOC-REG"
        failures.append(f"{name}: allocs/op {o['allocs_per_op']} -> {n['allocs_per_op']}")
    elif n["ns_per_op"] > o["ns_per_op"] * (1 + threshold / 100):
        verdict = "NS-REG"
        failures.append(
            f"{name}: ns/op {o['ns_per_op']:.0f} -> {n['ns_per_op']:.0f} "
            f"({(n['ns_per_op'] / o['ns_per_op'] - 1) * 100:.1f}% slower, threshold {threshold:.0f}%)")
    elif ns_ratio >= 1.05:
        verdict = "improved"
    print(f"{name:<34} {o['ns_per_op']:>14.0f} {n['ns_per_op']:>14.0f} {ns_ratio:>8.2f}x {alloc_str:>13} {verdict:>10}")

for name in new:
    if name not in old:
        print(f"{name:<34} {'(new)':>14} {new[name]['ns_per_op']:>14.0f}")

if failures:
    print()
    print(f"{len(failures)} regression(s) beyond the {threshold:.0f}% threshold:")
    for f in failures:
        print(f"  - {f}")
    if not report_only:
        sys.exit(1)
    print("(report-only: not failing)")
else:
    print()
    print("no regressions beyond threshold")
EOF

#!/usr/bin/env bash
# Async-jobs smoke: start 1 single-job-worker watosd shard + watos-router as
# real processes, prove the async sweep subsystem end to end —
#   1. POST /v1/sweeps answers 202 with durable handles while the legs run,
#   2. an interactive job submitted behind a deep queued bulk-sweep backlog
#      overtakes it (priority dispatch): it finishes while the last sweep is
#      still running,
#   3. a sweep handle's final merged record diffs clean against the
#      in-process sweep (`watos -canon`),
#   4. a repeat of the finished interactive job is served from the router's
#      completed-result cache without crossing the fleet.
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/watosd" ./cmd/watosd
go build -o "$BIN/watos-router" ./cmd/watos-router
go build -o "$BIN/watos" ./cmd/watos

PORT_A=${PORT_A:-8795}
PORT_R=${PORT_R:-8794}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "endpoint on port $1 never became healthy" >&2
  return 1
}

# One shard, ONE job worker: every sweep leg queues behind its predecessor,
# giving the interactive job a backlog to overtake.
"$BIN/watosd" -addr "127.0.0.1:$PORT_A" -workers 2 -jobs 1 &
wait_healthy "$PORT_A"
"$BIN/watos-router" -addr "127.0.0.1:$PORT_R" -shards "127.0.0.1:$PORT_A" &
wait_healthy "$PORT_R"

echo "== async sweep handles + interactive job races past the bulk legs =="
# Six bulk sweeps (the GA workload is the heaviest leg this CLI reaches;
# distinct seeds keep the 24 legs from coalescing) stack several seconds of
# sweep-leg work on the single job worker.
SWEEP_JSON='{"model":"Llama2-30B","seq":4096,"batch":1024,"ga":true}'
LAST_ID=""
for seed in 0 1 2 3 4 5; do
  body=$SWEEP_JSON
  [ "$seed" != 0 ] && body=${SWEEP_JSON%\}}",\"seed\":$seed}"
  LAST_ID=$(curl -s -X POST "http://127.0.0.1:$PORT_R/v1/sweeps" -d "$body" \
    | python3 -c "
import json, sys
st = json.load(sys.stdin)
assert st['state'] == 'running', f'sweep handle not running at submit: {st}'
assert st['total_legs'] == 4, f'expected 4 legs: {st}'
print(st['id'])
")
done
echo "queued 6 async sweeps (24 legs); last handle: $LAST_ID"

JOB_ID=$(curl -s -X POST "http://127.0.0.1:$PORT_R/v1/jobs" \
  -d '{"model":"Llama2-30B","config":"config3","seq":2048,"seed":42}' \
  | python3 -c "import json,sys; print(json.load(sys.stdin)['id'])")

# Poll the interactive job to done (the poll also lands its result in the
# router's completed-result cache).
for _ in $(seq 1 300); do
  STATE=$(curl -s "http://127.0.0.1:$PORT_R/v1/jobs/$JOB_ID" \
    | python3 -c "import json,sys; print(json.load(sys.stdin)['state'])")
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "interactive job failed" >&2; exit 1; }
  sleep 0.1
done
[ "$STATE" = done ] || { echo "interactive job never finished" >&2; exit 1; }

# The single job worker still owes seconds of queued sweep legs: the
# interactive job overtook them or it could not have finished already.
curl -s "http://127.0.0.1:$PORT_R/v1/sweeps/$LAST_ID" | python3 -c "
import json, sys
st = json.load(sys.stdin)
assert st['state'] == 'running', \
    f'sweep already {st[\"state\"]} when the interactive job finished — priority dispatch broken'
print(f'interactive job done; last sweep at {st[\"completed_legs\"]}/{st[\"total_legs\"]} legs — interactive overtook the bulk backlog')
"

echo "== async merged record vs in-process sweep =="
for _ in $(seq 1 600); do
  STATE=$(curl -s "http://127.0.0.1:$PORT_R/v1/sweeps/$LAST_ID" \
    | python3 -c "import json,sys; print(json.load(sys.stdin)['state'])")
  { [ "$STATE" = done ] || [ "$STATE" = failed ]; } && break
  sleep 0.1
done
# swp-1 is the seed-0 sweep — the request `watos` runs in-process below.
curl -s "http://127.0.0.1:$PORT_R/v1/sweeps/swp-1" | python3 -c "
import json, sys
st = json.load(sys.stdin)
assert st['state'] == 'done', f'sweep ended {st[\"state\"]}: {st.get(\"error\")}'
assert st['completed_legs'] == st['total_legs'] == 4
for leg in st['legs']:
    assert leg['state'] == 'done' and leg.get('result'), f'leg without a partial row: {leg}'
sys.stdout.write(st['result']['canonical'])
" > "$WORK/async-sweep.txt"
"$BIN/watos" -model Llama2-30B -seq 4096 -batch 1024 -ga -canon > "$WORK/local-sweep.txt"
cmp "$WORK/async-sweep.txt" "$WORK/local-sweep.txt"
echo "byte-identical ($(wc -c < "$WORK/local-sweep.txt") bytes)"

echo "== repeat job served from the completed-result cache =="
ROUTED_BEFORE=$(curl -s "http://127.0.0.1:$PORT_R/v1/stats" \
  | python3 -c "import json,sys; print(json.load(sys.stdin)['router']['jobs_routed'])")
curl -s -X POST "http://127.0.0.1:$PORT_R/v1/jobs" \
  -d '{"model":"Llama2-30B","config":"config3","seq":2048,"seed":42}' | python3 -c "
import json, sys
j = json.load(sys.stdin)
assert j['id'].startswith('cache/'), f'repeat not served from cache: {j[\"id\"]}'
assert j['state'] == 'done' and j.get('result'), f'cache job not terminal: {j}'
print('repeat answered at the router as', j['id'])
"
curl -s "http://127.0.0.1:$PORT_R/v1/stats" | python3 -c "
import json, sys
before = int('$ROUTED_BEFORE')
s = json.load(sys.stdin)
rc = s['result_cache']
assert rc['hits'] >= 1, f'no result-cache hit recorded: {rc}'
assert s['router']['jobs_routed'] == before, \
    f'repeat crossed the fleet: jobs_routed {before} -> {s[\"router\"][\"jobs_routed\"]}'
print('result cache:', rc)
"

echo "async-smoke: all assertions passed"

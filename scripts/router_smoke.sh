#!/usr/bin/env bash
# Router smoke: start 2 watosd shards + watos-router, prove the sharded tier
# is invisible to results —
#   1. a routed single-architecture job is byte-identical to the in-process
#      search (`watos -canon` diff),
#   2. a scatter-gathered Table II sweep merges into the same record set as
#      an in-process sweep (`watos -canon` diff, no -config),
#   3. a third shard joining with -seed-from answers a previously-routed job
#      entirely from the seeded caches (stats assertion, cross-process).
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/watosd" ./cmd/watosd
go build -o "$BIN/watos-router" ./cmd/watos-router
go build -o "$BIN/watos" ./cmd/watos

PORT_A=${PORT_A:-8791}
PORT_B=${PORT_B:-8792}
PORT_C=${PORT_C:-8793}
PORT_R=${PORT_R:-8790}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "endpoint on port $1 never became healthy" >&2
  return 1
}

"$BIN/watosd" -addr "127.0.0.1:$PORT_A" -workers 2 &
"$BIN/watosd" -addr "127.0.0.1:$PORT_B" -workers 2 &
wait_healthy "$PORT_A"
wait_healthy "$PORT_B"

"$BIN/watos-router" -addr "127.0.0.1:$PORT_R" \
  -shards "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" &
wait_healthy "$PORT_R"

echo "== routed job vs in-process search =="
"$BIN/watos" -model Llama2-30B -config config3 -seq 2048 \
  -remote "127.0.0.1:$PORT_R" -canon > "$WORK/routed.txt"
"$BIN/watos" -model Llama2-30B -config config3 -seq 2048 -canon > "$WORK/local.txt"
cmp "$WORK/routed.txt" "$WORK/local.txt"
echo "byte-identical ($(wc -c < "$WORK/local.txt") bytes)"

echo "== scatter-gathered sweep vs in-process sweep =="
"$BIN/watos" -model Llama2-30B -seq 2048 \
  -remote "127.0.0.1:$PORT_R" -canon > "$WORK/routed-sweep.txt"
"$BIN/watos" -model Llama2-30B -seq 2048 -canon > "$WORK/local-sweep.txt"
cmp "$WORK/routed-sweep.txt" "$WORK/local-sweep.txt"
echo "byte-identical ($(wc -c < "$WORK/local-sweep.txt") bytes)"

echo "== cold shard joins with -seed-from and serves warm =="
# Find which shard owns the config3 fingerprint (the routed job and the
# sweep's config3 part both ran there) so the joiner seeds from the peer
# that actually holds those warm entries.
OWNER_PORT=$PORT_A
if curl -s "http://127.0.0.1:$PORT_B/v1/jobs" | python3 -c "
import json, sys
jobs = json.load(sys.stdin)
sys.exit(0 if any(j.get('config') == 'config3' for j in jobs) else 1)
"; then
  OWNER_PORT=$PORT_B
fi
"$BIN/watosd" -addr "127.0.0.1:$PORT_C" -workers 2 -seed-from "127.0.0.1:$OWNER_PORT" &
wait_healthy "$PORT_C"

# Ask the seeded shard directly for the already-routed job: it must answer
# without a single candidate-cache miss or re-simulation.
"$BIN/watos" -model Llama2-30B -config config3 -seq 2048 \
  -remote "127.0.0.1:$PORT_C" -canon > "$WORK/seeded.txt"
cmp "$WORK/seeded.txt" "$WORK/local.txt"
curl -s "http://127.0.0.1:$PORT_C/v1/stats" | python3 -c "
import json, sys
s = json.load(sys.stdin)
cc = s['candidate_cache']
assert cc['size'] > 0, f'joined shard has empty caches (seed failed): {cc}'
assert cc['misses'] == 0, f'joined shard re-explored candidates: {cc}'
assert cc['hits'] > 0, f'joined shard served nothing from the seed: {cc}'
assert s['eval_cache']['misses'] == 0, f'joined shard re-simulated: {s[\"eval_cache\"]}'
print('joined shard served entirely from the peer seed:', cc)
"

echo "router-smoke: all assertions passed"

#!/usr/bin/env bash
# Chaos smoke: start 3 watosd shards + watos-router (replicas=2) as real
# processes and prove the fleet survives churn without touching results —
#   1. the audited replica placement over 3 shards is within the greedy
#      bound (recovery load spread over survivors, max spread <= 1),
#   2. a scatter-gathered Table II sweep completes byte-identically to the
#      in-process sweep while one shard is SIGKILLed mid-leg (`watos -canon`
#      diff, cross-process),
#   3. DELETE /v1/shards drains a survivor: its warm slice streams to the
#      inheritor, which then serves the full sweep with zero cold cache
#      misses (stats-delta assertion).
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/watosd" ./cmd/watosd
go build -o "$BIN/watos-router" ./cmd/watos-router
go build -o "$BIN/watos" ./cmd/watos

PORT_A=${PORT_A:-8795}
PORT_B=${PORT_B:-8796}
PORT_C=${PORT_C:-8797}
PORT_R=${PORT_R:-8798}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "endpoint on port $1 never became healthy" >&2
  return 1
}

"$BIN/watosd" -addr "127.0.0.1:$PORT_A" -workers 2 & PID_A=$!
"$BIN/watosd" -addr "127.0.0.1:$PORT_B" -workers 2 & PID_B=$!
"$BIN/watosd" -addr "127.0.0.1:$PORT_C" -workers 2 & PID_C=$!
wait_healthy "$PORT_A"
wait_healthy "$PORT_B"
wait_healthy "$PORT_C"

"$BIN/watos-router" -addr "127.0.0.1:$PORT_R" \
  -shards "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B,127.0.0.1:$PORT_C" \
  -replicas 2 -sweep-retries 3 &
wait_healthy "$PORT_R"

echo "== replica placement over 3 shards is within the greedy bound =="
curl -s "http://127.0.0.1:$PORT_R/v1/stats" | python3 -c "
import json, sys
p = json.load(sys.stdin)['placement']
assert p['replicas'] == 2, p
assert p['within_bound'], f'recovery-load spread exceeds the greedy bound: {p}'
assert p['max_spread'] <= 1, p
print('recovery-load rows (buckets per inheritor):', p['rows'])
"

echo "== baseline: in-process Table II sweep =="
"$BIN/watos" -model Llama2-30B -seq 2048 -canon > "$WORK/local-sweep.txt"

echo "== SIGKILL a shard mid-sweep =="
"$BIN/watos" -model Llama2-30B -seq 2048 \
  -remote "127.0.0.1:$PORT_R" -canon > "$WORK/chaos-sweep.txt" &
SWEEP_PID=$!

# Kill the first shard caught with an accepted sweep leg — the worst
# moment: the leg is accepted (queued or executing) and its result is about
# to be lost with the process.
VICTIM_PORT=
for _ in $(seq 1 400); do
  kill -0 "$SWEEP_PID" 2>/dev/null || break
  for P in "$PORT_A" "$PORT_B" "$PORT_C"; do
    if curl -s "http://127.0.0.1:$P/v1/jobs" 2>/dev/null | python3 -c "
import json, sys
jobs = json.load(sys.stdin)
sys.exit(0 if any(j.get('state') in ('queued', 'running') for j in jobs) else 1)
" 2>/dev/null; then
      VICTIM_PORT=$P
      break 2
    fi
  done
  sleep 0.05
done
if [ -z "$VICTIM_PORT" ]; then
  echo "no shard was caught holding a sweep leg before the sweep finished" >&2
  exit 1
fi
case "$VICTIM_PORT" in
  "$PORT_A") kill -9 "$PID_A" ;;
  "$PORT_B") kill -9 "$PID_B" ;;
  "$PORT_C") kill -9 "$PID_C" ;;
esac
echo "SIGKILLed shard on port $VICTIM_PORT mid-leg"

wait "$SWEEP_PID"
cmp "$WORK/chaos-sweep.txt" "$WORK/local-sweep.txt"
echo "sweep byte-identical through the crash ($(wc -c < "$WORK/local-sweep.txt") bytes)"

curl -s "http://127.0.0.1:$PORT_R/v1/stats" | python3 -c "
import json, sys
s = json.load(sys.stdin)
r = s['router']
assert s['healthy_shards'] == 2, f'{s[\"healthy_shards\"]} healthy shards, want 2'
assert s['total_shards'] == 3, s['total_shards']
recovered = r['leg_retries'] + r['failovers'] + r['route_errors']
assert recovered >= 1, f'crash left no failover trace: {r}'
assert s['placement']['within_bound'], s['placement']
print('failover trace:', {k: r[k] for k in ('leg_retries', 'failovers', 'route_errors')})
"

echo "== drain a survivor; the inheritor serves its slice warm =="
SURVIVORS=()
for P in "$PORT_A" "$PORT_B" "$PORT_C"; do
  [ "$P" = "$VICTIM_PORT" ] || SURVIVORS+=("$P")
done
DRAIN_PORT=${SURVIVORS[0]}
KEEP_PORT=${SURVIVORS[1]}

# Re-warm through the router first: cache entries for legs that had already
# finished on the SIGKILLed shard died with it, so one routed sweep over the
# two survivors recomputes them where routing now points. After this, the
# survivors collectively hold the whole sweep warm — which is what makes a
# zero-cold-miss assertion on the drain handoff itself meaningful.
"$BIN/watos" -model Llama2-30B -seq 2048 \
  -remote "127.0.0.1:$PORT_R" -canon > "$WORK/rewarm-sweep.txt"
cmp "$WORK/rewarm-sweep.txt" "$WORK/local-sweep.txt"

BEFORE=$(curl -s "http://127.0.0.1:$KEEP_PORT/v1/stats")
REPORT=$(curl -s -X DELETE -H 'Content-Type: application/json' \
  -d "{\"addr\":\"127.0.0.1:$DRAIN_PORT\"}" "http://127.0.0.1:$PORT_R/v1/shards")
echo "$REPORT" | python3 -c "
import json, sys
rep = json.load(sys.stdin)
assert rep.get('drained'), f'drain degraded: {rep}'
assert rep.get('snapshot_bytes', 0) > 0, rep
inh = rep.get('inheritors') or []
# The SIGKILLed shard is still a designated inheritor but must be skipped,
# not pushed to; the surviving shard absorbs the slice.
pushed = [i for i in inh if not i.get('error')]
skipped = [i for i in inh if i.get('error')]
assert len(pushed) == 1, f'want exactly one warm inheritor, got {inh}'
assert pushed[0].get('eval_entries', 0) > 0, pushed
assert all(i['error'].startswith('skipped') for i in skipped), skipped
print('drained', rep['addr'], '->', pushed[0]['addr'],
      f\"({rep['snapshot_bytes']} snapshot bytes, {pushed[0]['eval_entries']} eval entries)\")
"

# The drained daemon is alive but refusing work: health must answer 503.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DRAIN_PORT/v1/healthz")
if [ "$CODE" != "503" ]; then
  echo "drained daemon health = HTTP $CODE, want 503" >&2
  exit 1
fi

"$BIN/watos" -model Llama2-30B -seq 2048 \
  -remote "127.0.0.1:$PORT_R" -canon > "$WORK/post-drain-sweep.txt"
cmp "$WORK/post-drain-sweep.txt" "$WORK/local-sweep.txt"
AFTER=$(curl -s "http://127.0.0.1:$KEEP_PORT/v1/stats")
python3 - "$BEFORE" "$AFTER" <<'EOF'
import json, sys
before, after = json.loads(sys.argv[1]), json.loads(sys.argv[2])
# Zero cold misses is the whole point; hits need not grow because repeat
# legs can also be answered from the daemon's terminal job history.
for key in ('candidate_cache', 'eval_cache'):
    delta = after[key]['misses'] - before[key]['misses']
    assert delta == 0, f'{key} took {delta} cold misses serving the drained slice'
print('inheritor served the drained slice warm (zero cold misses)')
EOF

echo "chaos-smoke: all assertions passed"

#!/usr/bin/env bash
# Prefetch smoke: a real watosd process with the speculative cache-warming
# lane on —
#   1. demand submissions are recorded in the request trace (GET /v1/trace)
#      with their decoded sweep coordinates,
#   2. an idle daemon pre-evaluates the predicted sweep neighbor of a
#      completed demand job, so the neighbor's later demand submission is a
#      warm hit attributed to prefetch — and byte-identical to the same
#      request demand-evaluated on a daemon with the lane off,
#   3. a demand burst arriving while speculations sit queued preempts them:
#      the queued prefetch jobs are cancelled (state cancelled, counted in
#      prefetch_cancelled), never letting speculation delay demand.
set -euo pipefail

BIN=$(mktemp -d)
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN" "$WORK"' EXIT

go build -o "$BIN/watosd" ./cmd/watosd

PORT_A=${PORT_A:-8815}
PORT_B=${PORT_B:-8816}

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "endpoint on port $1 never became healthy" >&2
  return 1
}

submit() { # submit <port> <json-body> -> job id
  curl -s -H 'Content-Type: application/json' -d "$2" \
    "http://127.0.0.1:$1/v1/jobs" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}

wait_done() { # wait_done <port> <job-id> -> writes job json to $WORK/job.json
  for _ in $(seq 1 300); do
    curl -s "http://127.0.0.1:$1/v1/jobs/$2" > "$WORK/job.json"
    STATE=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("state",""))' "$WORK/job.json")
    case "$STATE" in queued|running) sleep 0.1 ;; *) break ;; esac
  done
  if [ "$STATE" != "done" ]; then
    echo "job $2 on port $1 ended as '$STATE', want done" >&2
    exit 1
  fi
}

stat_of() { # stat_of <port> <json-field>
  curl -s "http://127.0.0.1:$1/v1/stats" | \
    python3 -c 'import json,sys; print(json.load(sys.stdin)[sys.argv[1]])' "$2"
}

echo "== 1. demand submissions land in the request trace =="
"$BIN/watosd" -addr "127.0.0.1:$PORT_A" -workers 2 -jobs 1 \
  -prefetch -prefetch-fanout 3 & PID_A=$!
wait_healthy "$PORT_A"

ID1=$(submit "$PORT_A" '{"config":"config3","fixed_tp":1}')
wait_done "$PORT_A" "$ID1"
curl -s "http://127.0.0.1:$PORT_A/v1/trace" | python3 -c "
import sys, json
tr = json.load(sys.stdin)
assert tr['len'] >= 1, tr
e = tr['entries'][0]
assert e['req']['tp'] == 1 and e['req']['config'] == 'config3', e
print('trace holds', tr['len'], 'entry with decoded coords tp=1 config=config3')
"

echo "== 2. the idle daemon pre-evaluates the predicted neighbor =="
# The completed tp=1 job predicts its sweep neighbors (nearest: tp=2) and
# evaluates them through idle capacity. Wait for the speculation to finish.
WARM=
for _ in $(seq 1 300); do
  ISSUED=$(stat_of "$PORT_A" prefetch_issued)
  DEPTH=$(stat_of "$PORT_A" queue_depth)
  INFLIGHT=$(stat_of "$PORT_A" jobs_in_flight)
  if [ "$ISSUED" -ge 1 ] && [ "$DEPTH" = 0 ] && [ "$INFLIGHT" = 0 ]; then WARM=1; break; fi
  sleep 0.1
done
if [ -z "$WARM" ]; then
  echo "speculation never issued/completed on the idle daemon" >&2
  exit 1
fi

ID2=$(submit "$PORT_A" '{"config":"config3","fixed_tp":2}')
wait_done "$PORT_A" "$ID2"
python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["result"]["canonical"], end="")' \
  "$WORK/job.json" > "$WORK/warm.txt"
HITS=$(stat_of "$PORT_A" hits_prefetch)
USEFUL=$(stat_of "$PORT_A" prefetch_useful)
if [ "$HITS" -lt 1 ] || [ "$USEFUL" -lt 1 ]; then
  echo "neighbor demand was not a prefetch-attributed warm hit (hits_prefetch=$HITS useful=$USEFUL)" >&2
  exit 1
fi
echo "predicted neighbor served warm: hits_prefetch=$HITS prefetch_useful=$USEFUL"

# Byte identity: the same request demand-evaluated on a daemon without the
# speculative lane must produce the identical canonical record.
"$BIN/watosd" -addr "127.0.0.1:$PORT_B" -workers 2 -jobs 1 &
wait_healthy "$PORT_B"
IDB=$(submit "$PORT_B" '{"config":"config3","fixed_tp":2}')
wait_done "$PORT_B" "$IDB"
python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["result"]["canonical"], end="")' \
  "$WORK/job.json" > "$WORK/cold.txt"
cmp "$WORK/warm.txt" "$WORK/cold.txt"
echo "prefetched record byte-identical to the lane-off demand evaluation"

echo "== 3. a demand burst preempts queued speculation =="
# The prefetch class is part of the wire API, so the preemption contract can
# be pinned deterministically on daemon B (no auto-speculation noise): a slow
# prefetch-class GA job holds the single worker, a second prefetch-class job
# sits queued behind it, and the demand burst must cancel the queued one
# instantly — state cancelled, counted, and the burst itself completes.
IDP1=$(submit "$PORT_B" '{"ga":true,"batch":96,"seed":1,"priority":"prefetch"}')
IDP2=$(submit "$PORT_B" '{"ga":true,"batch":97,"seed":2,"priority":"prefetch"}')
if [ "$(stat_of "$PORT_B" queue_prefetch)" -lt 1 ]; then
  echo "second speculation did not queue behind the running one" >&2
  exit 1
fi

BURST_IDS=
for i in 1 2 3; do
  BURST_IDS="$BURST_IDS $(submit "$PORT_B" "{\"config\":\"config3\",\"seed\":$((40 + i))}")"
done
STATE2=$(curl -s "http://127.0.0.1:$PORT_B/v1/jobs/$IDP2" | \
  python3 -c 'import json,sys; print(json.load(sys.stdin).get("state",""))')
if [ "$STATE2" != "cancelled" ]; then
  echo "queued speculation $IDP2 is '$STATE2' after demand arrival, want cancelled" >&2
  exit 1
fi
if [ "$(stat_of "$PORT_B" prefetch_cancelled)" -lt 1 ]; then
  echo "prefetch_cancelled counter did not move" >&2
  exit 1
fi
for ID in $BURST_IDS; do
  wait_done "$PORT_B" "$ID"
done
echo "demand burst cancelled queued speculation $IDP2 instantly; burst completed (running speculation $IDP1 untouched)"

echo "prefetch-smoke: all assertions passed"
